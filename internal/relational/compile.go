package relational

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// This file implements the expression half of the batched executor:
// expressions are compiled once per statement execution into a tree of vexpr
// nodes that evaluate over column vectors with a selection vector, instead
// of re-walking the AST (and re-resolving column names) for every tuple.
// Operator semantics are shared with the row interpreter through
// applyBinary/applyUnary/applyScalarFunc, so the two engines cannot drift.

// vecChunk is the batch granularity: scans, filters, projections and
// aggregations process at most this many rows per call, so scratch buffers
// stay cache-sized and are reused across chunks via vctx.
const vecChunk = 1024

// vbatch is the columnar input to compiled expressions: one value vector per
// visible column binding. Vectors may alias table storage and are never
// written to. Vectors for columns that no expression references may be nil.
type vbatch struct {
	vecs [][]Value
}

// vctx holds reusable scratch state for one statement execution: free lists
// of chunk-sized value and selection buffers. A vctx is not safe for
// concurrent use; each query execution takes its own from a pool.
type vctx struct {
	vals [][]Value
	sels [][]int
}

var vctxPool = sync.Pool{New: func() any { return &vctx{} }}

func getVctx() *vctx { return vctxPool.Get().(*vctx) }

// release clears payload references out of the cached buffers (so pooled
// memory does not retain query strings) and returns the vctx to the pool.
func (c *vctx) release() {
	for _, b := range c.vals {
		clear(b)
	}
	vctxPool.Put(c)
}

func (c *vctx) getVals() []Value {
	if n := len(c.vals); n > 0 {
		b := c.vals[n-1]
		c.vals = c.vals[:n-1]
		return b
	}
	return make([]Value, vecChunk)
}

func (c *vctx) putVals(b []Value) { c.vals = append(c.vals, b[:vecChunk]) }

func (c *vctx) getSel() []int {
	if n := len(c.sels); n > 0 {
		b := c.sels[n-1]
		c.sels = c.sels[:n-1]
		return b[:0]
	}
	return make([]int, 0, vecChunk)
}

func (c *vctx) putSel(b []int) { c.sels = append(c.sels, b) }

// vexpr is one compiled expression node. eval computes the expression for
// the rows named by sel (indices into the batch's column vectors), writing
// the value for row sel[k] into out[k]. len(sel) never exceeds vecChunk.
type vexpr interface {
	eval(c *vctx, b *vbatch, sel []int, out []Value) error
}

// compileExpr compiles an expression against a binding list. Compilation
// never fails: unresolvable references compile to a node that reports the
// interpreter's error when (and only when) at least one row is evaluated,
// matching the row engine, which never evaluates expressions over empty
// input.
func compileExpr(e Expr, cols []colBinding) vexpr {
	switch x := e.(type) {
	case *Literal:
		return &vLit{v: x.Val}
	case *ColRef:
		ord, err := (&evalEnv{cols: cols}).resolve(x)
		if err != nil {
			return &vErr{err: err}
		}
		return &vCol{ord: ord}
	case *Unary:
		return &vUnary{op: x.Op, x: compileExpr(x.X, cols)}
	case *Binary:
		switch x.Op {
		case "AND":
			return &vAnd{l: compileExpr(x.L, cols), r: compileExpr(x.R, cols)}
		case "OR":
			return &vOr{l: compileExpr(x.L, cols), r: compileExpr(x.R, cols)}
		}
		// Fused column-vs-literal fast path: one pass over the column
		// vector, no operand buffers.
		if cr, ok := x.L.(*ColRef); ok {
			if lit, ok2 := x.R.(*Literal); ok2 {
				if ord, err := (&evalEnv{cols: cols}).resolve(cr); err == nil {
					return &vColLitOp{op: x.Op, ord: ord, lit: lit.Val, cmpOp: cmpOpCode(x.Op)}
				}
			}
		}
		if lit, ok := x.L.(*Literal); ok {
			if cr, ok2 := x.R.(*ColRef); ok2 {
				if ord, err := (&evalEnv{cols: cols}).resolve(cr); err == nil {
					return &vColLitOp{op: x.Op, ord: ord, lit: lit.Val, litLeft: true, cmpOp: cmpOpCode(x.Op)}
				}
			}
		}
		return &vBinary{op: x.Op, l: compileExpr(x.L, cols), r: compileExpr(x.R, cols)}
	case *IsNull:
		return &vIsNull{x: compileExpr(x.X, cols), negate: x.Negate}
	case *Between:
		return &vBetween{
			x:      compileExpr(x.X, cols),
			lo:     compileExpr(x.Lo, cols),
			hi:     compileExpr(x.Hi, cols),
			negate: x.Negate,
		}
	case *InList:
		// The interpreter evaluates list items lazily (stopping at the
		// first match), so only all-literal lists — which cannot error —
		// are compiled eagerly; anything else falls back to the
		// interpreter per row.
		vals := make([]Value, 0, len(x.List))
		for _, item := range x.List {
			lit, ok := item.(*Literal)
			if !ok {
				return &vRowFallback{e: e, cols: cols}
			}
			vals = append(vals, lit.Val)
		}
		return &vInList{x: compileExpr(x.X, cols), vals: vals, negate: x.Negate}
	case *FuncCall:
		if x.IsAggregate() {
			return &vErr{err: fmt.Errorf("sql: aggregate %s used outside aggregation context", x.Name)}
		}
		args := make([]vexpr, len(x.Args))
		for i, a := range x.Args {
			args[i] = compileExpr(a, cols)
		}
		return &vFunc{f: x, args: args}
	case *Subquery:
		return &vErr{err: fmt.Errorf("sql: unresolved subquery (internal error)")}
	case nil:
		return &vErr{err: fmt.Errorf("sql: cannot evaluate <nil>")}
	}
	// Unknown node shapes defer to the row interpreter for identical
	// semantics (including its error text).
	return &vRowFallback{e: e, cols: cols}
}

type vLit struct{ v Value }

func (n *vLit) eval(_ *vctx, _ *vbatch, sel []int, out []Value) error {
	for k := range sel {
		out[k] = n.v
	}
	return nil
}

type vCol struct{ ord int }

func (n *vCol) eval(_ *vctx, b *vbatch, sel []int, out []Value) error {
	vec := b.vecs[n.ord]
	for k, r := range sel {
		out[k] = vec[r]
	}
	return nil
}

// vErr defers a compile-time resolution error to evaluation time, raising it
// only when at least one row is evaluated (the row engine's behaviour).
type vErr struct{ err error }

func (n *vErr) eval(_ *vctx, _ *vbatch, sel []int, _ []Value) error {
	if len(sel) == 0 {
		return nil
	}
	return n.err
}

type vUnary struct {
	op string
	x  vexpr
}

func (n *vUnary) eval(c *vctx, b *vbatch, sel []int, out []Value) error {
	if err := n.x.eval(c, b, sel, out); err != nil {
		return err
	}
	for k := range sel {
		v, err := applyUnary(n.op, out[k])
		if err != nil {
			return err
		}
		out[k] = v
	}
	return nil
}

type vBinary struct {
	op   string
	l, r vexpr
}

func (n *vBinary) eval(c *vctx, b *vbatch, sel []int, out []Value) error {
	lbuf := c.getVals()
	defer c.putVals(lbuf)
	if err := n.l.eval(c, b, sel, lbuf); err != nil {
		return err
	}
	if err := n.r.eval(c, b, sel, out); err != nil {
		return err
	}
	for k := range sel {
		v, err := applyBinary(n.op, lbuf[k], out[k])
		if err != nil {
			return err
		}
		out[k] = v
	}
	return nil
}

// vColLitOp is the fused `column <op> literal` (or swapped) node covering
// every non-logical binary operator: a single pass over the column vector.
// Comparison operators against a non-NULL numeric or string literal take a
// typed loop that mirrors Compare's ordering (numerics compare as float64,
// same-kind strings bytewise) without its per-row struct traffic.
type vColLitOp struct {
	op      string
	ord     int
	lit     Value
	litLeft bool
	cmpOp   int // cmpOpCode(op); 0 when op is not a comparison
}

// Comparison opcodes for vColLitOp's typed loops.
const (
	cmpNone = iota
	cmpEQ
	cmpNE
	cmpLT
	cmpLE
	cmpGT
	cmpGE
)

func cmpOpCode(op string) int {
	switch op {
	case "=":
		return cmpEQ
	case "<>":
		return cmpNE
	case "<":
		return cmpLT
	case "<=":
		return cmpLE
	case ">":
		return cmpGT
	case ">=":
		return cmpGE
	}
	return cmpNone
}

func cmpBool(code, c int) Value {
	switch code {
	case cmpEQ:
		return BoolValue(c == 0)
	case cmpNE:
		return BoolValue(c != 0)
	case cmpLT:
		return BoolValue(c < 0)
	case cmpLE:
		return BoolValue(c <= 0)
	case cmpGT:
		return BoolValue(c > 0)
	default:
		return BoolValue(c >= 0)
	}
}

func (n *vColLitOp) eval(_ *vctx, b *vbatch, sel []int, out []Value) error {
	vec := b.vecs[n.ord]
	if n.cmpOp != cmpNone && !n.lit.Null {
		switch n.lit.Kind {
		case TypeInt, TypeFloat:
			bf, _ := n.lit.AsFloat()
			for k, r := range sel {
				v := vec[r]
				if v.Null {
					out[k] = NullValue()
					continue
				}
				var cr int
				switch v.Kind {
				case TypeInt:
					// Same ordering as Compare: numerics compare as float64.
					switch af := float64(v.Int); {
					case af < bf:
						cr = -1
					case af > bf:
						cr = 1
					}
				case TypeFloat:
					switch {
					case v.Float < bf:
						cr = -1
					case v.Float > bf:
						cr = 1
					}
				default:
					cr = Compare(v, n.lit)
				}
				if n.litLeft {
					cr = -cr
				}
				out[k] = cmpBool(n.cmpOp, cr)
			}
			return nil
		case TypeText, TypeDate:
			for k, r := range sel {
				v := vec[r]
				if v.Null {
					out[k] = NullValue()
					continue
				}
				var cr int
				if v.Kind == n.lit.Kind {
					cr = strings.Compare(v.Str, n.lit.Str)
				} else {
					cr = Compare(v, n.lit)
				}
				if n.litLeft {
					cr = -cr
				}
				out[k] = cmpBool(n.cmpOp, cr)
			}
			return nil
		}
	}
	for k, r := range sel {
		var v Value
		var err error
		if n.litLeft {
			v, err = applyBinary(n.op, n.lit, vec[r])
		} else {
			v, err = applyBinary(n.op, vec[r], n.lit)
		}
		if err != nil {
			return err
		}
		out[k] = v
	}
	return nil
}

// vAnd implements three-valued AND. The right side is evaluated only for
// rows the left side did not decide FALSE, preserving the interpreter's
// short-circuit — including its error behaviour (e.g. `x <> 0 AND 1/x > 0`
// never divides by zero).
type vAnd struct{ l, r vexpr }

func (n *vAnd) eval(c *vctx, b *vbatch, sel []int, out []Value) error {
	if err := n.l.eval(c, b, sel, out); err != nil {
		return err
	}
	sub := c.getSel()
	defer c.putSel(sub)
	pos := c.getSel()
	defer c.putSel(pos)
	for k, r := range sel {
		lb, lok := out[k].Truthy()
		if lok && !lb {
			out[k] = BoolValue(false)
			continue
		}
		sub = append(sub, r)
		pos = append(pos, k)
	}
	if len(sub) == 0 {
		return nil
	}
	rbuf := c.getVals()
	defer c.putVals(rbuf)
	if err := n.r.eval(c, b, sub, rbuf); err != nil {
		return err
	}
	for j, k := range pos {
		lb, lok := out[k].Truthy()
		rb, rok := rbuf[j].Truthy()
		switch {
		case rok && !rb:
			out[k] = BoolValue(false)
		case lok && rok:
			out[k] = BoolValue(lb && rb)
		default:
			out[k] = NullValue()
		}
	}
	return nil
}

// vOr mirrors vAnd for three-valued OR.
type vOr struct{ l, r vexpr }

func (n *vOr) eval(c *vctx, b *vbatch, sel []int, out []Value) error {
	if err := n.l.eval(c, b, sel, out); err != nil {
		return err
	}
	sub := c.getSel()
	defer c.putSel(sub)
	pos := c.getSel()
	defer c.putSel(pos)
	for k, r := range sel {
		lb, lok := out[k].Truthy()
		if lok && lb {
			out[k] = BoolValue(true)
			continue
		}
		sub = append(sub, r)
		pos = append(pos, k)
	}
	if len(sub) == 0 {
		return nil
	}
	rbuf := c.getVals()
	defer c.putVals(rbuf)
	if err := n.r.eval(c, b, sub, rbuf); err != nil {
		return err
	}
	for j, k := range pos {
		lb, lok := out[k].Truthy()
		rb, rok := rbuf[j].Truthy()
		switch {
		case rok && rb:
			out[k] = BoolValue(true)
		case lok && rok:
			out[k] = BoolValue(lb || rb)
		default:
			out[k] = NullValue()
		}
	}
	return nil
}

type vIsNull struct {
	x      vexpr
	negate bool
}

func (n *vIsNull) eval(c *vctx, b *vbatch, sel []int, out []Value) error {
	if err := n.x.eval(c, b, sel, out); err != nil {
		return err
	}
	for k := range sel {
		if n.negate {
			out[k] = BoolValue(!out[k].Null)
		} else {
			out[k] = BoolValue(out[k].Null)
		}
	}
	return nil
}

type vBetween struct {
	x, lo, hi vexpr
	negate    bool
}

func (n *vBetween) eval(c *vctx, b *vbatch, sel []int, out []Value) error {
	lobuf := c.getVals()
	defer c.putVals(lobuf)
	hibuf := c.getVals()
	defer c.putVals(hibuf)
	if err := n.x.eval(c, b, sel, out); err != nil {
		return err
	}
	if err := n.lo.eval(c, b, sel, lobuf); err != nil {
		return err
	}
	if err := n.hi.eval(c, b, sel, hibuf); err != nil {
		return err
	}
	for k := range sel {
		v, lo, hi := out[k], lobuf[k], hibuf[k]
		if v.Null || lo.Null || hi.Null {
			out[k] = NullValue()
			continue
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if n.negate {
			in = !in
		}
		out[k] = BoolValue(in)
	}
	return nil
}

// vInList handles IN lists whose items are all literals, mirroring the
// interpreter's first-match scan and NULL semantics.
type vInList struct {
	x      vexpr
	vals   []Value
	negate bool
}

func (n *vInList) eval(c *vctx, b *vbatch, sel []int, out []Value) error {
	if err := n.x.eval(c, b, sel, out); err != nil {
		return err
	}
	for k := range sel {
		v := out[k]
		if v.Null {
			out[k] = NullValue()
			continue
		}
		sawNull := false
		matched := false
		for _, iv := range n.vals {
			if iv.Null {
				sawNull = true
				continue
			}
			if Compare(v, iv) == 0 {
				matched = true
				break
			}
		}
		switch {
		case matched:
			out[k] = BoolValue(!n.negate)
		case sawNull:
			out[k] = NullValue()
		default:
			out[k] = BoolValue(n.negate)
		}
	}
	return nil
}

type vFunc struct {
	f    *FuncCall
	args []vexpr
}

func (n *vFunc) eval(c *vctx, b *vbatch, sel []int, out []Value) error {
	bufs := make([][]Value, len(n.args))
	for i := range n.args {
		bufs[i] = c.getVals()
		defer c.putVals(bufs[i])
		if err := n.args[i].eval(c, b, sel, bufs[i]); err != nil {
			return err
		}
	}
	argv := make([]Value, len(n.args))
	for k := range sel {
		for i := range bufs {
			argv[i] = bufs[i][k]
		}
		v, err := applyScalarFunc(n.f, argv)
		if err != nil {
			return err
		}
		out[k] = v
	}
	return nil
}

// vRowFallback evaluates the original expression with the row interpreter,
// one selected row at a time. It is the compiler's safety valve for shapes
// it does not vectorise; semantics are identical by construction.
type vRowFallback struct {
	e    Expr
	cols []colBinding
}

func (n *vRowFallback) eval(_ *vctx, b *vbatch, sel []int, out []Value) error {
	env := &evalEnv{cols: n.cols}
	row := make(Row, len(b.vecs))
	for k, r := range sel {
		for cix, vec := range b.vecs {
			if vec == nil {
				row[cix] = NullValue() // unreferenced column, never resolved
			} else {
				row[cix] = vec[r]
			}
		}
		env.row = row
		v, err := eval(n.e, env)
		if err != nil {
			return err
		}
		out[k] = v
	}
	return nil
}

// appendKeyValue renders one value into a hash key buffer with the same byte
// layout as encodeKey, but without per-row string allocation (integer and
// float payloads are appended with strconv).
func appendKeyValue(dst []byte, v Value) []byte {
	if v.Null {
		return append(dst, "\x00N|"...)
	}
	dst = append(dst, byte(v.Kind)+'0')
	switch v.Kind {
	case TypeInt:
		dst = strconv.AppendInt(dst, v.Int, 10)
	case TypeFloat:
		dst = strconv.AppendFloat(dst, v.Float, 'g', -1, 64)
	case TypeText, TypeDate:
		dst = append(dst, v.Str...)
	case TypeBool:
		if v.Bool {
			dst = append(dst, "TRUE"...)
		} else {
			dst = append(dst, "FALSE"...)
		}
	default:
		dst = append(dst, '?')
	}
	return append(dst, '|')
}
