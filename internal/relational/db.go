package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Result carries the outcome of one statement: column names and rows for
// SELECT, affected-row counts for DML.
type Result struct {
	Columns      []string
	Rows         []Row
	RowsAffected int64
	LastInsertID int64
}

// Format renders the result as an aligned text table (used by the shell, the
// examples and the figure reproductions).
func (r *Result) Format() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("OK, %d row(s) affected", r.RowsAffected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v)
			for p := len(v); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d row(s))\n", len(r.Rows))
	return b.String()
}

// Database is one engine instance: a named catalog of tables guarded by a
// readers-writer lock, with a vendor dialect profile.
type Database struct {
	name    string
	dialect Dialect

	mu      sync.RWMutex
	tables  map[string]*Table // by lower-cased name
	indexes map[string]string // index name (lower) -> table name (lower)

	// schemaVer is bumped by every DDL statement; cached plans parsed under
	// an older version are re-parsed on next use (mirrors the federation
	// metadata cache's version-stamp invalidation).
	schemaVer atomic.Uint64
	plans     *planCache

	// rowExec forces the seed row-at-a-time interpreter instead of the
	// batched executor; tests use it to compare both engines. Set it before
	// issuing queries, not concurrently with them.
	rowExec bool
}

// NewDatabase creates an empty database with the given dialect.
func NewDatabase(name string, dialect Dialect) *Database {
	return &Database{
		name:    name,
		dialect: dialect,
		tables:  make(map[string]*Table),
		indexes: make(map[string]string),
		plans:   newPlanCache(defaultPlanCacheCap),
	}
}

// bumpSchema invalidates cached plans after a DDL change.
func (db *Database) bumpSchema() { db.schemaVer.Add(1) }

// SchemaVersion returns the monotonic DDL version counter.
func (db *Database) SchemaVersion() uint64 { return db.schemaVer.Load() }

// parseCached parses a script through the per-database plan cache. Entries
// are keyed by exact query text and revalidated against the schema version,
// so a plan cached before a CREATE/DROP is re-parsed on next use. Parse
// errors are not cached.
func (db *Database) parseCached(sql string) ([]Statement, error) {
	v := db.schemaVer.Load()
	if stmts, ok := db.plans.get(sql, v); ok {
		return stmts, nil
	}
	stmts, err := ParseSQLScript(sql)
	if err != nil {
		return nil, err
	}
	db.plans.put(sql, stmts, v)
	return stmts, nil
}

// parseOneCached is parseCached restricted to a single statement, matching
// ParseSQL's contract.
func (db *Database) parseOneCached(sql string) (Statement, error) {
	stmts, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// Dialect returns the vendor profile.
func (db *Database) Dialect() Dialect { return db.dialect }

// TableNames lists tables, sorted.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.schema.Name)
	}
	sort.Strings(names)
	return names
}

// Table returns the named table's handle (read-only use must still go
// through Exec/Query for locking; this accessor serves catalog inspection).
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Exec parses and executes one statement outside any transaction.
func (db *Database) Exec(sql string) (*Result, error) {
	stmt, err := db.parseOneCached(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt, nil)
}

// ExecScript executes a semicolon-separated script, returning the last
// result.
func (db *Database) ExecScript(sql string) (*Result, error) {
	stmts, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, stmt := range stmts {
		last, err = db.ExecStmt(stmt, nil)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Query is Exec restricted to SELECT.
func (db *Database) Query(sql string) (*Result, error) {
	stmt, err := db.parseOneCached(sql)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *SelectStmt, *ExplainStmt: // both are read-only
	default:
		return nil, fmt.Errorf("relational: Query requires SELECT, got %s", describeStmt(stmt))
	}
	return db.ExecStmt(stmt, nil)
}

// ExecStmt executes a parsed statement; tx, when non-nil, records undo
// operations for rollback.
func (db *Database) ExecStmt(stmt Statement, tx *Tx) (*Result, error) {
	if err := db.dialect.Check(stmt); err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.execSelect(s)
	case *InsertStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execInsert(s, tx)
	case *UpdateStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execUpdate(s, tx)
	case *DeleteStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execDelete(s, tx)
	case *CreateTableStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execCreateTable(s)
	case *DropTableStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execDropTable(s)
	case *CreateIndexStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execCreateIndex(s)
	case *DropIndexStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execDropIndex(s)
	case *ExplainStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.explainSelect(s.Query)
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return nil, fmt.Errorf("relational: %s must go through a Session", describeStmt(stmt))
	}
	return nil, fmt.Errorf("relational: unsupported statement %s", describeStmt(stmt))
}

func (db *Database) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("relational: %s: no such table %s", db.name, name)
	}
	return t, nil
}

func (db *Database) execCreateTable(s *CreateTableStmt) (*Result, error) {
	key := strings.ToLower(s.Schema.Name)
	if _, exists := db.tables[key]; exists {
		if s.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("relational: %s: table %s already exists", db.name, s.Schema.Name)
	}
	db.tables[key] = newTable(s.Schema)
	db.bumpSchema()
	return &Result{}, nil
}

func (db *Database) execDropTable(s *DropTableStmt) (*Result, error) {
	key := strings.ToLower(s.Table)
	if _, exists := db.tables[key]; !exists {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("relational: %s: no such table %s", db.name, s.Table)
	}
	delete(db.tables, key)
	for ixName, tbl := range db.indexes {
		if tbl == key {
			delete(db.indexes, ixName)
		}
	}
	db.bumpSchema()
	return &Result{}, nil
}

func (db *Database) execCreateIndex(s *CreateIndexStmt) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	ixKey := strings.ToLower(s.Name)
	if _, exists := db.indexes[ixKey]; exists {
		return nil, fmt.Errorf("relational: %s: index %s already exists", db.name, s.Name)
	}
	col := t.schema.ColIndex(s.Column)
	if col < 0 {
		return nil, fmt.Errorf("relational: %s: table %s has no column %s", db.name, s.Table, s.Column)
	}
	if err := t.createIndex(s.Name, col, s.Unique); err != nil {
		return nil, err
	}
	db.indexes[ixKey] = strings.ToLower(s.Table)
	db.bumpSchema()
	return &Result{}, nil
}

func (db *Database) execDropIndex(s *DropIndexStmt) (*Result, error) {
	ixKey := strings.ToLower(s.Name)
	tblKey, ok := db.indexes[ixKey]
	if !ok {
		return nil, fmt.Errorf("relational: %s: no such index %s", db.name, s.Name)
	}
	t := db.tables[tblKey]
	if err := t.dropIndex(s.Name); err != nil {
		return nil, err
	}
	delete(db.indexes, ixKey)
	db.bumpSchema()
	return &Result{}, nil
}

func (db *Database) execInsert(s *InsertStmt, tx *Tx) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	ords, err := insertOrdinals(t, s.Columns)
	if err != nil {
		return nil, err
	}

	var sourceRows []Row
	switch {
	case s.Query != nil:
		res, err := db.execSelect(s.Query)
		if err != nil {
			return nil, err
		}
		sourceRows = res.Rows
	default:
		env := &evalEnv{}
		for _, exprs := range s.Rows {
			row := make(Row, len(exprs))
			for i, e := range exprs {
				v, err := eval(e, env)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			sourceRows = append(sourceRows, row)
		}
	}

	res := &Result{}
	for _, src := range sourceRows {
		if len(src) != len(ords) {
			return nil, fmt.Errorf("relational: %s: INSERT expects %d values, got %d",
				db.name, len(ords), len(src))
		}
		full := make(Row, len(t.schema.Columns))
		for i := range full {
			full[i] = NullValue()
		}
		for i, ord := range ords {
			full[ord] = src[i]
		}
		id, err := t.insert(full)
		if err != nil {
			return nil, err
		}
		if tx != nil {
			tbl, rowID := t, id
			tx.record(func() error {
				_, err := tbl.delete(rowID)
				return err
			})
		}
		res.RowsAffected++
		res.LastInsertID = id
	}
	return res, nil
}

func insertOrdinals(t *Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		ords := make([]int, len(t.schema.Columns))
		for i := range ords {
			ords[i] = i
		}
		return ords, nil
	}
	ords := make([]int, len(cols))
	seen := make(map[int]bool, len(cols))
	for i, c := range cols {
		ord := t.schema.ColIndex(c)
		if ord < 0 {
			return nil, fmt.Errorf("relational: table %s has no column %s", t.schema.Name, c)
		}
		if seen[ord] {
			return nil, fmt.Errorf("relational: column %s listed twice", c)
		}
		seen[ord] = true
		ords[i] = ord
	}
	return ords, nil
}

func (db *Database) execUpdate(s *UpdateStmt, tx *Tx) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	env := envForTable(t, s.Table)
	type setOp struct {
		ord int
		e   Expr
	}
	sets := make([]setOp, len(s.Set))
	for i, sc := range s.Set {
		ord := t.schema.ColIndex(sc.Column)
		if ord < 0 {
			return nil, fmt.Errorf("relational: table %s has no column %s", t.schema.Name, sc.Column)
		}
		sets[i] = setOp{ord: ord, e: sc.Value}
	}

	where, _, err := db.rewriteSubqueries(s.Where)
	if err != nil {
		return nil, err
	}
	ids, err := matchingRowIDs(t, where, env)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, id := range ids {
		old, ok := t.rowByID(id)
		if !ok {
			continue
		}
		env.row = old
		newRow := old.Clone()
		for _, op := range sets {
			v, err := eval(op.e, env)
			if err != nil {
				return nil, err
			}
			newRow[op.ord] = v
		}
		prev, err := t.update(id, newRow)
		if err != nil {
			return nil, err
		}
		if tx != nil {
			tbl, rowID, oldRow := t, id, prev
			tx.record(func() error {
				_, err := tbl.update(rowID, oldRow)
				return err
			})
		}
		res.RowsAffected++
	}
	return res, nil
}

func (db *Database) execDelete(s *DeleteStmt, tx *Tx) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	env := envForTable(t, s.Table)
	where, _, err := db.rewriteSubqueries(s.Where)
	if err != nil {
		return nil, err
	}
	ids, err := matchingRowIDs(t, where, env)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, id := range ids {
		old, err := t.delete(id)
		if err != nil {
			return nil, err
		}
		if tx != nil {
			tbl, rowID, oldRow := t, id, old
			tx.record(func() error {
				return tbl.insertWithID(rowID, oldRow)
			})
		}
		res.RowsAffected++
	}
	return res, nil
}

// envForTable builds an eval environment exposing one table's columns under
// both the table name and its own name (UPDATE/DELETE have no aliases).
func envForTable(t *Table, binding string) *evalEnv {
	env := &evalEnv{}
	b := strings.ToLower(binding)
	for _, c := range t.schema.Columns {
		env.cols = append(env.cols, colBinding{table: b, name: strings.ToLower(c.Name)})
	}
	return env
}

// matchingRowIDs evaluates a WHERE clause over a table and returns matching
// row IDs (all rows when where is nil). It uses a single-column index when
// the clause's conjuncts allow it.
func matchingRowIDs(t *Table, where Expr, env *evalEnv) ([]int64, error) {
	var ids []int64
	var evalErr error
	visit := func(id int64, row Row) bool {
		if where == nil {
			ids = append(ids, id)
			return true
		}
		env.row = row
		v, err := eval(where, env)
		if err != nil {
			evalErr = err
			return false
		}
		if b, ok := v.Truthy(); ok && b {
			ids = append(ids, id)
		}
		return true
	}

	// Index fast path: WHERE contains an `col = literal` conjunct on an
	// indexed column.
	if col, val, ok := indexableEquality(t, where, env); ok {
		if candIDs, have := t.lookupEqual(col, val); have {
			buf := make(Row, len(t.cols))
			for _, id := range candIDs {
				s, ok := t.slots[id]
				if !ok || !t.live[s] {
					continue
				}
				for c, cv := range t.cols {
					buf[c] = cv[s]
				}
				if !visit(id, buf) {
					break
				}
			}
			if evalErr != nil {
				return nil, evalErr
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids, nil
		}
	}

	t.scan(visit)
	if evalErr != nil {
		return nil, evalErr
	}
	return ids, nil
}

// indexableEquality finds a `column = constant` conjunct whose column has a
// single-column index.
func indexableEquality(t *Table, where Expr, env *evalEnv) (int, Value, bool) {
	for _, conj := range splitConjuncts(where) {
		b, ok := conj.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		col, lit := b.L, b.R
		cr, isCol := col.(*ColRef)
		if !isCol {
			cr, isCol = lit.(*ColRef)
			lit = b.L
			if !isCol {
				continue
			}
		}
		litE, isLit := lit.(*Literal)
		if !isLit {
			continue
		}
		ord := t.schema.ColIndex(cr.Name)
		if ord < 0 {
			continue
		}
		if t.singleColIndex(ord) == nil {
			continue
		}
		v, err := Coerce(litE.Val, t.schema.Columns[ord].Type)
		if err != nil {
			continue
		}
		return ord, v, true
	}
	return 0, Value{}, false
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// ---- Sessions and transactions ----

// Session is one client's connection-scoped view of the database, carrying
// an optional open transaction. Sessions are not safe for concurrent use by
// multiple goroutines (match the semantics of a JDBC connection).
type Session struct {
	db *Database
	tx *Tx
}

// Tx is an open transaction: an undo log applied in reverse on rollback.
type Tx struct {
	undo []func() error
}

func (tx *Tx) record(fn func() error) { tx.undo = append(tx.undo, fn) }

// NewSession opens a session.
func (db *Database) NewSession() *Session { return &Session{db: db} }

// InTx reports whether a transaction is open.
func (s *Session) InTx() bool { return s.tx != nil }

// Exec parses and executes one statement in the session, honouring
// transaction control statements.
func (s *Session) Exec(sql string) (*Result, error) {
	stmt, err := s.db.parseOneCached(sql)
	if err != nil {
		return nil, err
	}
	if err := s.db.dialect.Check(stmt); err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *BeginStmt:
		return &Result{}, s.Begin()
	case *CommitStmt:
		return &Result{}, s.Commit()
	case *RollbackStmt:
		return &Result{}, s.Rollback()
	}
	return s.db.ExecStmt(stmt, s.tx)
}

// Begin opens a transaction.
func (s *Session) Begin() error {
	if !s.db.dialect.Transactions {
		return fmt.Errorf("relational: %s does not support transactions", s.db.dialect.Name)
	}
	if s.tx != nil {
		return fmt.Errorf("relational: transaction already open")
	}
	s.tx = &Tx{}
	return nil
}

// Commit makes the transaction's effects permanent (they already are; the
// undo log is discarded).
func (s *Session) Commit() error {
	if s.tx == nil {
		return fmt.Errorf("relational: no open transaction")
	}
	s.tx = nil
	return nil
}

// Rollback undoes every DML effect of the open transaction, in reverse.
func (s *Session) Rollback() error {
	if s.tx == nil {
		return fmt.Errorf("relational: no open transaction")
	}
	tx := s.tx
	s.tx = nil
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	for i := len(tx.undo) - 1; i >= 0; i-- {
		if err := tx.undo[i](); err != nil {
			return fmt.Errorf("relational: rollback: %w", err)
		}
	}
	return nil
}
