package relational

import (
	"strings"
	"testing"
)

// mustExec runs a statement and fails the test on error.
func mustExec(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	return res
}

// newPatientsDB builds a database with the paper's Royal Brisbane Hospital
// Patient relation (§2.2) and a few rows.
func newPatientsDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("RBH", DialectOracle)
	mustExec(t, db, `CREATE TABLE Patient (
		Patient_Id INT PRIMARY KEY,
		Name VARCHAR(64) NOT NULL,
		Date_Of_Birth DATE,
		Gender VARCHAR(1),
		Address VARCHAR(128))`)
	mustExec(t, db, `INSERT INTO Patient VALUES
		(1, 'Alice Howe', '1961-04-02', 'F', '12 Wickham Tce'),
		(2, 'Bob Tran', '1974-09-13', 'M', '3 Boundary St'),
		(3, 'Carol Ng', '1980-01-30', 'F', NULL),
		(4, 'Dan Park', '1955-07-21', 'M', '77 Ann St')`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := newPatientsDB(t)
	res := mustQuery(t, db, "SELECT Name, Gender FROM Patient ORDER BY Patient_Id")
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	if res.Columns[0] != "Name" || res.Columns[1] != "Gender" {
		t.Fatalf("bad columns %v", res.Columns)
	}
	if res.Rows[0][0].Str != "Alice Howe" {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
}

func TestSelectStar(t *testing.T) {
	db := newPatientsDB(t)
	res := mustQuery(t, db, "SELECT * FROM Patient WHERE Patient_Id = 2")
	if len(res.Rows) != 1 || len(res.Columns) != 5 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), len(res.Columns))
	}
	if res.Rows[0][1].Str != "Bob Tran" {
		t.Errorf("got %v", res.Rows[0])
	}
}

func TestWherePredicates(t *testing.T) {
	db := newPatientsDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"Gender = 'F'", 2},
		{"Gender <> 'F'", 2},
		{"Patient_Id > 2", 2},
		{"Patient_Id >= 2 AND Gender = 'M'", 2},
		{"Patient_Id = 1 OR Patient_Id = 4", 2},
		{"Name LIKE 'A%'", 1},
		{"Name LIKE '%a%'", 3},
		{"Name LIKE '_ob%'", 1},
		{"Address IS NULL", 1},
		{"Address IS NOT NULL", 3},
		{"Patient_Id IN (1, 3, 99)", 2},
		{"Patient_Id NOT IN (1, 3)", 2},
		{"Patient_Id BETWEEN 2 AND 3", 2},
		{"Patient_Id NOT BETWEEN 2 AND 3", 2},
		{"NOT Gender = 'F'", 2},
		{"Date_Of_Birth < '1970-01-01'", 2},
	}
	for _, c := range cases {
		res := mustQuery(t, db, "SELECT Patient_Id FROM Patient WHERE "+c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestNullComparisonsFilterOut(t *testing.T) {
	db := newPatientsDB(t)
	// Address = NULL is UNKNOWN for every row, so nothing matches.
	res := mustQuery(t, db, "SELECT * FROM Patient WHERE Address = NULL")
	if len(res.Rows) != 0 {
		t.Errorf("NULL equality matched %d rows", len(res.Rows))
	}
}

func TestExpressionsAndFunctions(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	res := mustQuery(t, db, "SELECT 1 + 2 * 3, UPPER('ab'), LENGTH('hello'), COALESCE(NULL, 'x'), SUBSTR('abcdef', 2, 3), ABS(-4)")
	row := res.Rows[0]
	if row[0].Int != 7 {
		t.Errorf("arith: %v", row[0])
	}
	if row[1].Str != "AB" {
		t.Errorf("UPPER: %v", row[1])
	}
	if row[2].Int != 5 {
		t.Errorf("LENGTH: %v", row[2])
	}
	if row[3].Str != "x" {
		t.Errorf("COALESCE: %v", row[3])
	}
	if row[4].Str != "bcd" {
		t.Errorf("SUBSTR: %v", row[4])
	}
	if row[5].Int != 4 {
		t.Errorf("ABS: %v", row[5])
	}
}

func TestConcatAndDivision(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	res := mustQuery(t, db, "SELECT 'a' || 'b', 7 / 2, 7.0 / 2, 7 % 3")
	row := res.Rows[0]
	if row[0].Str != "ab" {
		t.Errorf("concat: %v", row[0])
	}
	if row[1].Int != 3 {
		t.Errorf("int div: %v", row[1])
	}
	if row[2].Float != 3.5 {
		t.Errorf("float div: %v", row[2])
	}
	if row[3].Int != 1 {
		t.Errorf("mod: %v", row[3])
	}
	if _, err := db.Query("SELECT 1 / 0"); err == nil {
		t.Error("division by zero not reported")
	}
}

func TestOrderLimitOffset(t *testing.T) {
	db := newPatientsDB(t)
	res := mustQuery(t, db, "SELECT Name FROM Patient ORDER BY Name DESC LIMIT 2 OFFSET 1")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].Str != "Carol Ng" || res.Rows[1][0].Str != "Bob Tran" {
		t.Errorf("got %v / %v", res.Rows[0][0], res.Rows[1][0])
	}
}

func TestOrderByAlias(t *testing.T) {
	db := newPatientsDB(t)
	res := mustQuery(t, db, "SELECT Patient_Id * 10 AS score FROM Patient ORDER BY score DESC LIMIT 1")
	if res.Rows[0][0].Int != 40 {
		t.Errorf("got %v", res.Rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	db := newPatientsDB(t)
	res := mustQuery(t, db, "SELECT DISTINCT Gender FROM Patient ORDER BY Gender")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	db := newPatientsDB(t)
	res := mustQuery(t, db, "SELECT COUNT(*), COUNT(Address), MIN(Patient_Id), MAX(Patient_Id), SUM(Patient_Id), AVG(Patient_Id) FROM Patient")
	row := res.Rows[0]
	if row[0].Int != 4 || row[1].Int != 3 {
		t.Errorf("counts: %v %v", row[0], row[1])
	}
	if row[2].Int != 1 || row[3].Int != 4 || row[4].Int != 10 {
		t.Errorf("min/max/sum: %v %v %v", row[2], row[3], row[4])
	}
	if row[5].Float != 2.5 {
		t.Errorf("avg: %v", row[5])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newPatientsDB(t)
	res := mustQuery(t, db, "SELECT Gender, COUNT(*) AS n FROM Patient GROUP BY Gender ORDER BY Gender")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d groups", len(res.Rows))
	}
	if res.Rows[0][0].Str != "F" || res.Rows[0][1].Int != 2 {
		t.Errorf("group F: %v", res.Rows[0])
	}
	res = mustQuery(t, db, "SELECT Gender FROM Patient GROUP BY Gender HAVING COUNT(*) > 1 ORDER BY Gender")
	if len(res.Rows) != 2 {
		t.Errorf("having: got %d", len(res.Rows))
	}
	res = mustQuery(t, db, "SELECT Gender FROM Patient GROUP BY Gender HAVING MIN(Patient_Id) = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "F" {
		t.Errorf("having min: %v", res.Rows)
	}
}

func TestCountOnEmptyTable(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	mustExec(t, db, "CREATE TABLE empty (x INT)")
	res := mustQuery(t, db, "SELECT COUNT(*), SUM(x) FROM empty")
	if len(res.Rows) != 1 {
		t.Fatalf("aggregate over empty table must yield one row, got %d", len(res.Rows))
	}
	if res.Rows[0][0].Int != 0 || !res.Rows[0][1].Null {
		t.Errorf("got %v", res.Rows[0])
	}
}

func newJoinDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("RBH", DialectOracle)
	mustExec(t, db, "CREATE TABLE doctors (employee_id INT PRIMARY KEY, qualification VARCHAR(32), position VARCHAR(32))")
	mustExec(t, db, "CREATE TABLE history (patient_id INT, date_recorded DATE, description VARCHAR(128), doctor_id INT)")
	mustExec(t, db, `INSERT INTO doctors VALUES (10, 'MBBS', 'Registrar'), (11, 'FRACP', 'Consultant'), (12, 'MBBS', 'Intern')`)
	mustExec(t, db, `INSERT INTO history VALUES
		(1, '1998-05-01', 'influenza', 10),
		(1, '1998-06-11', 'follow-up', 11),
		(2, '1998-07-02', 'fracture', 10),
		(3, '1998-08-15', 'allergy', 99)`)
	return db
}

func TestInnerJoin(t *testing.T) {
	db := newJoinDB(t)
	res := mustQuery(t, db, `SELECT h.patient_id, d.position FROM history h
		JOIN doctors d ON h.doctor_id = d.employee_id ORDER BY h.patient_id, d.position`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	if res.Rows[0][1].Str != "Consultant" && res.Rows[0][1].Str != "Registrar" {
		t.Errorf("row0: %v", res.Rows[0])
	}
}

func TestLeftJoin(t *testing.T) {
	db := newJoinDB(t)
	res := mustQuery(t, db, `SELECT h.patient_id, d.position FROM history h
		LEFT JOIN doctors d ON h.doctor_id = d.employee_id ORDER BY h.patient_id`)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	last := res.Rows[3]
	if last[0].Int != 3 || !last[1].Null {
		t.Errorf("unmatched row not null-extended: %v", last)
	}
}

func TestCommaJoinWithWhere(t *testing.T) {
	db := newJoinDB(t)
	res := mustQuery(t, db, `SELECT h.description FROM history h, doctors d
		WHERE h.doctor_id = d.employee_id AND d.qualification = 'MBBS' ORDER BY h.description`)
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

func TestCrossJoinCount(t *testing.T) {
	db := newJoinDB(t)
	res := mustQuery(t, db, "SELECT COUNT(*) FROM history CROSS JOIN doctors")
	if res.Rows[0][0].Int != 12 {
		t.Errorf("cross join count = %v", res.Rows[0][0])
	}
}

func TestNonEquiJoin(t *testing.T) {
	db := newJoinDB(t)
	res := mustQuery(t, db, `SELECT COUNT(*) FROM history h JOIN doctors d ON h.doctor_id < d.employee_id`)
	// doctor_id 10: < 11,12 → 2 each for two history rows = 4; 11: <12 → 1; 99: none.
	if res.Rows[0][0].Int != 5 {
		t.Errorf("non-equi join count = %v, want 5", res.Rows[0][0])
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newPatientsDB(t)
	res := mustExec(t, db, "UPDATE Patient SET Address = 'unknown' WHERE Address IS NULL")
	if res.RowsAffected != 1 {
		t.Fatalf("update affected %d", res.RowsAffected)
	}
	res = mustQuery(t, db, "SELECT COUNT(*) FROM Patient WHERE Address = 'unknown'")
	if res.Rows[0][0].Int != 1 {
		t.Errorf("after update: %v", res.Rows[0][0])
	}
	res = mustExec(t, db, "DELETE FROM Patient WHERE Gender = 'M'")
	if res.RowsAffected != 2 {
		t.Fatalf("delete affected %d", res.RowsAffected)
	}
	res = mustQuery(t, db, "SELECT COUNT(*) FROM Patient")
	if res.Rows[0][0].Int != 2 {
		t.Errorf("after delete: %v", res.Rows[0][0])
	}
}

func TestPrimaryKeyViolation(t *testing.T) {
	db := newPatientsDB(t)
	if _, err := db.Exec("INSERT INTO Patient VALUES (1, 'Dup', NULL, 'F', NULL)"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	if _, err := db.Exec("UPDATE Patient SET Patient_Id = 2 WHERE Patient_Id = 1"); err == nil {
		t.Fatal("update into duplicate primary key accepted")
	}
}

func TestNotNullViolation(t *testing.T) {
	db := newPatientsDB(t)
	if _, err := db.Exec("INSERT INTO Patient (Patient_Id) VALUES (9)"); err == nil {
		t.Fatal("NOT NULL violation accepted")
	}
}

func TestVarcharLimit(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	mustExec(t, db, "CREATE TABLE s (v VARCHAR(3))")
	if _, err := db.Exec("INSERT INTO s VALUES ('abcd')"); err == nil {
		t.Fatal("oversize VARCHAR accepted")
	}
	mustExec(t, db, "INSERT INTO s VALUES ('abc')")
}

func TestInsertColumnSubset(t *testing.T) {
	db := newPatientsDB(t)
	mustExec(t, db, "INSERT INTO Patient (Patient_Id, Name) VALUES (5, 'Eve Liu')")
	res := mustQuery(t, db, "SELECT Address FROM Patient WHERE Patient_Id = 5")
	if !res.Rows[0][0].Null {
		t.Errorf("unspecified column not NULL: %v", res.Rows[0][0])
	}
}

func TestInsertFromSelect(t *testing.T) {
	db := newPatientsDB(t)
	mustExec(t, db, "CREATE TABLE names (n VARCHAR(64))")
	res := mustExec(t, db, "INSERT INTO names SELECT Name FROM Patient WHERE Gender = 'F'")
	if res.RowsAffected != 2 {
		t.Fatalf("insert-select affected %d", res.RowsAffected)
	}
}

func TestSecondaryIndexAndLookup(t *testing.T) {
	db := newPatientsDB(t)
	mustExec(t, db, "CREATE INDEX idx_gender ON Patient (Gender)")
	res := mustQuery(t, db, "SELECT COUNT(*) FROM Patient WHERE Gender = 'F'")
	if res.Rows[0][0].Int != 2 {
		t.Errorf("index lookup: %v", res.Rows[0][0])
	}
	// Index must track updates and deletes.
	mustExec(t, db, "UPDATE Patient SET Gender = 'X' WHERE Patient_Id = 1")
	res = mustQuery(t, db, "SELECT COUNT(*) FROM Patient WHERE Gender = 'F'")
	if res.Rows[0][0].Int != 1 {
		t.Errorf("index after update: %v", res.Rows[0][0])
	}
	mustExec(t, db, "DELETE FROM Patient WHERE Gender = 'X'")
	res = mustQuery(t, db, "SELECT COUNT(*) FROM Patient WHERE Gender = 'X'")
	if res.Rows[0][0].Int != 0 {
		t.Errorf("index after delete: %v", res.Rows[0][0])
	}
}

func TestUniqueIndex(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	mustExec(t, db, "CREATE TABLE u (a INT, b VARCHAR(8))")
	mustExec(t, db, "INSERT INTO u VALUES (1, 'x'), (2, 'y')")
	mustExec(t, db, "CREATE UNIQUE INDEX ub ON u (b)")
	if _, err := db.Exec("INSERT INTO u VALUES (3, 'x')"); err == nil {
		t.Fatal("unique index violation accepted")
	}
	// Creating a unique index over duplicate data must fail.
	mustExec(t, db, "CREATE TABLE d (a INT)")
	mustExec(t, db, "INSERT INTO d VALUES (1), (1)")
	if _, err := db.Exec("CREATE UNIQUE INDEX da ON d (a)"); err == nil {
		t.Fatal("unique index over duplicates accepted")
	}
}

func TestDropTableAndIndex(t *testing.T) {
	db := newPatientsDB(t)
	mustExec(t, db, "CREATE INDEX ig ON Patient (Gender)")
	mustExec(t, db, "DROP INDEX ig")
	if _, err := db.Exec("DROP INDEX ig"); err == nil {
		t.Fatal("double drop index accepted")
	}
	mustExec(t, db, "DROP TABLE Patient")
	if _, err := db.Query("SELECT * FROM Patient"); err == nil {
		t.Fatal("query after drop table succeeded")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS Patient")
}

func TestTransactionsRollback(t *testing.T) {
	db := newPatientsDB(t)
	s := db.NewSession()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO Patient VALUES (10, 'Tx Person', NULL, 'F', NULL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE Patient SET Name = 'Renamed' WHERE Patient_Id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("DELETE FROM Patient WHERE Patient_Id = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, "SELECT COUNT(*) FROM Patient")
	if res.Rows[0][0].Int != 4 {
		t.Errorf("rollback left %v rows", res.Rows[0][0])
	}
	res = mustQuery(t, db, "SELECT Name FROM Patient WHERE Patient_Id = 1")
	if res.Rows[0][0].Str != "Alice Howe" {
		t.Errorf("update not rolled back: %v", res.Rows[0][0])
	}
	res = mustQuery(t, db, "SELECT COUNT(*) FROM Patient WHERE Patient_Id = 2")
	if res.Rows[0][0].Int != 1 {
		t.Errorf("delete not rolled back")
	}
}

func TestTransactionsCommit(t *testing.T) {
	db := newPatientsDB(t)
	s := db.NewSession()
	mustSess := func(sql string) {
		t.Helper()
		if _, err := s.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustSess("BEGIN")
	mustSess("DELETE FROM Patient WHERE Patient_Id = 4")
	mustSess("COMMIT")
	res := mustQuery(t, db, "SELECT COUNT(*) FROM Patient")
	if res.Rows[0][0].Int != 3 {
		t.Errorf("commit lost: %v", res.Rows[0][0])
	}
	if err := s.Rollback(); err == nil {
		t.Error("rollback with no tx accepted")
	}
}

func TestDialectGating(t *testing.T) {
	msql := NewDatabase("m", DialectMSQL)
	mustExec(t, msql, "CREATE TABLE t (a INT)")
	mustExec(t, msql, "INSERT INTO t VALUES (1), (2)")
	if _, err := msql.Query("SELECT COUNT(*) FROM t"); err == nil {
		t.Error("mSQL accepted an aggregate")
	} else if !strings.Contains(err.Error(), "mSQL") {
		t.Errorf("error does not name the dialect: %v", err)
	}
	if _, err := msql.Query("SELECT a FROM t GROUP BY a"); err == nil {
		t.Error("mSQL accepted GROUP BY")
	}
	s := msql.NewSession()
	if _, err := s.Exec("BEGIN"); err == nil {
		t.Error("mSQL accepted BEGIN")
	}
	// Oracle accepts all of these.
	ora := NewDatabase("o", DialectOracle)
	mustExec(t, ora, "CREATE TABLE t (a INT)")
	if _, err := ora.Query("SELECT COUNT(*) FROM t"); err != nil {
		t.Errorf("Oracle rejected aggregate: %v", err)
	}
}

func TestDialectVarcharCap(t *testing.T) {
	msql := NewDatabase("m", DialectMSQL)
	if _, err := msql.Exec("CREATE TABLE big (v VARCHAR(1000))"); err == nil {
		t.Error("mSQL accepted VARCHAR(1000)")
	}
}

func TestParseErrors(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	bad := []string{
		"",
		"SELEC * FROM x",
		"SELECT FROM x",
		"SELECT * FROM",
		"INSERT INTO",
		"CREATE TABLE t (a BADTYPE)",
		"SELECT * FROM t WHERE",
		"SELECT unknownfunc(1)",
		"SELECT 'unterminated",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
}

func TestUnknownColumnAndTableErrors(t *testing.T) {
	db := newPatientsDB(t)
	if _, err := db.Query("SELECT nope FROM Patient"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Query("SELECT * FROM missing"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Query("SELECT Patient.Name FROM Patient p"); err == nil {
		t.Error("original table name usable despite alias")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	mustExec(t, db, "CREATE TABLE a (id INT)")
	mustExec(t, db, "CREATE TABLE b (id INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1)")
	mustExec(t, db, "INSERT INTO b VALUES (1)")
	if _, err := db.Query("SELECT id FROM a, b"); err == nil {
		t.Error("ambiguous column accepted")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := newPatientsDB(t)
	res := mustQuery(t, db, "select NAME from PATIENT where patient_id = 1")
	if res.Rows[0][0].Str != "Alice Howe" {
		t.Errorf("case-insensitive lookup failed: %v", res.Rows[0])
	}
}

func TestEscapedQuote(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	mustExec(t, db, "CREATE TABLE q (s VARCHAR(32))")
	mustExec(t, db, "INSERT INTO q VALUES ('O''Brien')")
	res := mustQuery(t, db, "SELECT s FROM q WHERE s = 'O''Brien'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "O'Brien" {
		t.Errorf("got %v", res.Rows)
	}
}

func TestResultFormat(t *testing.T) {
	db := newPatientsDB(t)
	res := mustQuery(t, db, "SELECT Patient_Id, Name FROM Patient WHERE Patient_Id = 1")
	text := res.Format()
	if !strings.Contains(text, "Alice Howe") || !strings.Contains(text, "Patient_Id") {
		t.Errorf("format output:\n%s", text)
	}
	if !strings.Contains(text, "(1 row(s))") {
		t.Errorf("missing row count:\n%s", text)
	}
}

func TestDateValidation(t *testing.T) {
	db := newPatientsDB(t)
	if _, err := db.Exec("INSERT INTO Patient VALUES (7, 'X', 'Jan 1 1990', 'F', NULL)"); err == nil {
		t.Error("malformed date accepted")
	}
}

func TestExecScript(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	res, err := db.ExecScript(`
		CREATE TABLE s (a INT);
		INSERT INTO s VALUES (1);
		INSERT INTO s VALUES (2);
		SELECT COUNT(*) FROM s;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 2 {
		t.Errorf("script result %v", res.Rows[0][0])
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	res := mustQuery(t, db, "SELECT 40 + 2 AS answer")
	if res.Columns[0] != "answer" || res.Rows[0][0].Int != 42 {
		t.Errorf("got %v %v", res.Columns, res.Rows)
	}
}

func TestAggregateDistinct(t *testing.T) {
	db := NewDatabase("t", DialectOracle)
	mustExec(t, db, "CREATE TABLE v (x INT)")
	mustExec(t, db, "INSERT INTO v VALUES (1), (1), (2), (NULL)")
	res := mustQuery(t, db, "SELECT COUNT(DISTINCT x), SUM(DISTINCT x) FROM v")
	if res.Rows[0][0].Int != 2 || res.Rows[0][1].Int != 3 {
		t.Errorf("distinct aggregates: %v", res.Rows[0])
	}
}
