package relational

import "fmt"

// Dialect is a vendor capability profile. The paper's prototype federates
// Oracle, mSQL, DB2 and Sybase behind one gateway; those engines accepted
// visibly different SQL subsets, which the federation layer must route
// around. A Dialect gates which statements the engine instance accepts, so
// the heterogeneity the paper copes with is real in the reproduction.
type Dialect struct {
	Name string
	// Capability flags.
	Joins        bool // explicit JOIN and multi-table FROM
	Aggregates   bool // COUNT/SUM/AVG/MIN/MAX and GROUP BY/HAVING
	Transactions bool // BEGIN/COMMIT/ROLLBACK
	OrderLimit   bool // ORDER BY ... LIMIT
	Distinct     bool
	Subqueries   bool // IN (SELECT ...) and EXISTS (SELECT ...)
	Union        bool // UNION / UNION ALL
	Like         bool // standard LIKE patterns (mSQL 2.x shipped RLIKE/CLIKE instead)
	InList       bool // literal IN lists (`x IN (1, 2)`; mSQL wanted OR chains)
	MaxVarchar   int  // upper bound for declared VARCHAR sizes (0 = unlimited)
}

// Vendor dialect profiles. Feature sets follow the engines' late-1990s
// behaviour in the ways that matter to WebFINDIT: mSQL (MiniSQL 2.x) had no
// aggregate functions, GROUP BY or transactions, which forces the wrapper
// layer to compensate — exactly the heterogeneity the paper's gateway layer
// bridges.
var (
	DialectOracle = Dialect{
		Name: "Oracle", Joins: true, Aggregates: true, Transactions: true,
		OrderLimit: true, Distinct: true, Subqueries: true, Union: true, Like: true,
		InList: true, MaxVarchar: 4000,
	}
	DialectMSQL = Dialect{
		Name: "mSQL", Joins: true, Aggregates: false, Transactions: false,
		OrderLimit: true, Distinct: true, Subqueries: false, Union: false, Like: false,
		InList: false, MaxVarchar: 255,
	}
	DialectDB2 = Dialect{
		Name: "DB2", Joins: true, Aggregates: true, Transactions: true,
		OrderLimit: true, Distinct: true, Subqueries: true, Union: true, Like: true,
		InList: true, MaxVarchar: 4000,
	}
	DialectSybase = Dialect{
		Name: "Sybase", Joins: true, Aggregates: true, Transactions: true,
		OrderLimit: true, Distinct: true, Subqueries: true, Union: true, Like: true,
		InList: true, MaxVarchar: 255,
	}
)

// DialectByName resolves a vendor name.
func DialectByName(name string) (Dialect, error) {
	switch name {
	case "Oracle":
		return DialectOracle, nil
	case "mSQL":
		return DialectMSQL, nil
	case "DB2":
		return DialectDB2, nil
	case "Sybase":
		return DialectSybase, nil
	}
	return Dialect{}, fmt.Errorf("relational: unknown dialect %q", name)
}

// Check rejects statements outside the dialect's capability set with an
// error shaped like the vendor's ("feature not supported").
func (d Dialect) Check(stmt Statement) error {
	unsupported := func(feature string) error {
		return fmt.Errorf("relational: %s does not support %s", d.Name, feature)
	}
	switch s := stmt.(type) {
	case *ExplainStmt:
		return d.Check(s.Query)
	case *SelectStmt:
		if !d.Union && s.Union != nil {
			return unsupported("UNION")
		}
		if !d.Subqueries {
			for _, e := range []Expr{s.Where, s.Having} {
				if e != nil && hasSubquery(e) {
					return unsupported("subqueries")
				}
			}
			for _, it := range s.Items {
				if it.Expr != nil && hasSubquery(it.Expr) {
					return unsupported("subqueries")
				}
			}
		}
		if !d.Joins && (len(s.From) > 1 || len(s.Joins) > 0) {
			return unsupported("joins")
		}
		if !d.Aggregates {
			if len(s.GroupBy) > 0 || s.Having != nil {
				return unsupported("GROUP BY / HAVING")
			}
			for _, item := range s.Items {
				if item.Expr != nil && hasAggregate(item.Expr) {
					return unsupported("aggregate functions")
				}
			}
			if s.Where != nil && hasAggregate(s.Where) {
				return unsupported("aggregate functions")
			}
		}
		if !d.Distinct && s.Distinct {
			return unsupported("DISTINCT")
		}
		if !d.OrderLimit && (len(s.OrderBy) > 0 || s.Limit >= 0) {
			return unsupported("ORDER BY / LIMIT")
		}
		if !d.Like {
			exprs := []Expr{s.Where, s.Having}
			for _, it := range s.Items {
				exprs = append(exprs, it.Expr)
			}
			for _, e := range exprs {
				if e != nil && hasLike(e) {
					return unsupported("LIKE")
				}
			}
		}
		if !d.InList {
			exprs := []Expr{s.Where, s.Having}
			for _, it := range s.Items {
				exprs = append(exprs, it.Expr)
			}
			for _, e := range exprs {
				if e != nil && hasInList(e) {
					return unsupported("IN lists")
				}
			}
		}
	case *CreateTableStmt:
		if d.MaxVarchar > 0 {
			for _, c := range s.Schema.Columns {
				if c.Size > d.MaxVarchar {
					return fmt.Errorf("relational: %s limits VARCHAR to %d (column %s asks %d)",
						d.Name, d.MaxVarchar, c.Name, c.Size)
				}
			}
		}
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		if !d.Transactions {
			return unsupported("transactions")
		}
	}
	return nil
}
