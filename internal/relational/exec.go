package relational

import (
	"fmt"
	"sort"
	"strings"
)

// rel is an intermediate relation during SELECT execution: column bindings
// (for name resolution), display names, and materialised rows.
type rel struct {
	cols  []colBinding
	names []string
	rows  []Row
}

func (r *rel) env() *evalEnv { return &evalEnv{cols: r.cols} }

// execSelect runs a SELECT (or a UNION chain). The caller holds the
// database lock. Subqueries are materialised first against the same
// snapshot.
func (db *Database) execSelect(s *SelectStmt) (*Result, error) {
	s, err := db.rewriteStmtSubqueries(s)
	if err != nil {
		return nil, err
	}
	if s.Union != nil {
		return db.execUnion(s)
	}
	return db.execSelectArm(s)
}

// execSelectArm runs one SELECT arm (no UNION handling), dispatching to the
// batched columnar executor or — when rowExec is set — the seed row-at-a-time
// interpreter kept as its test oracle. DISTINCT, OFFSET and LIMIT are shared
// between the two engines.
func (db *Database) execSelectArm(s *SelectStmt) (*Result, error) {
	s, err := db.rewriteStmtSubqueries(s)
	if err != nil {
		return nil, err
	}
	var out *Result
	if db.rowExec {
		out, err = db.execSelectArmRows(s)
	} else {
		out, err = db.execSelectArmVec(s)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		seen := make(map[string]bool, len(out.Rows))
		kept := out.Rows[:0:0]
		for _, row := range out.Rows {
			k := encodeKey(row)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, row)
			}
		}
		out.Rows = kept
	}

	if s.Offset > 0 {
		if s.Offset >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(out.Rows) {
		out.Rows = out.Rows[:s.Limit]
	}
	return out, nil
}

// execSelectArmRows is the seed row-at-a-time interpreter, retained as the
// oracle the batched executor is property-tested against.
func (db *Database) execSelectArmRows(s *SelectStmt) (*Result, error) {
	src, residual, err := db.buildFrom(s)
	if err != nil {
		return nil, err
	}

	// Residual WHERE conjuncts (those not pushed into scans).
	if len(residual) > 0 {
		env := src.env()
		kept := src.rows[:0:0]
		for _, row := range src.rows {
			env.row = row
			ok := true
			for _, conj := range residual {
				v, err := eval(conj, env)
				if err != nil {
					return nil, err
				}
				b, valid := v.Truthy()
				if !valid || !b {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, row)
			}
		}
		src.rows = kept
	}

	items, err := expandStars(s.Items, src.cols, src.names)
	if err != nil {
		return nil, err
	}

	grouped := len(s.GroupBy) > 0 || s.Having != nil || anyAggregate(items)
	if grouped {
		return db.execGrouped(s, items, src)
	}
	return db.execPlain(s, items, src)
}

// anyAggregate reports whether any projected expression aggregates.
func anyAggregate(items []SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil && hasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// expandStars replaces * and t.* items with explicit column references.
func expandStars(items []SelectItem, cols []colBinding, names []string) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		tbl := strings.ToLower(it.Table)
		matched := false
		for i, b := range cols {
			if tbl != "" && b.table != tbl {
				continue
			}
			matched = true
			out = append(out, SelectItem{
				Expr:  &ColRef{Table: cols[i].table, Name: cols[i].name},
				Alias: names[i],
			})
		}
		if tbl != "" && !matched {
			return nil, fmt.Errorf("sql: unknown table %s in %s.*", it.Table, it.Table)
		}
		if tbl == "" && !matched {
			return nil, fmt.Errorf("sql: SELECT * with no FROM tables")
		}
	}
	return out, nil
}

// itemName picks the display name of a projected column.
func itemName(it SelectItem, ordinal int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Name
	}
	if it.Expr != nil {
		return it.Expr.String()
	}
	return fmt.Sprintf("col%d", ordinal+1)
}

// execPlain projects without grouping, handling ORDER BY.
func (db *Database) execPlain(s *SelectStmt, items []SelectItem, src *rel) (*Result, error) {
	res := &Result{}
	for i, it := range items {
		res.Columns = append(res.Columns, itemName(it, i))
	}
	env := src.env()

	type sortable struct {
		proj Row
		keys Row
	}
	var tagged []sortable
	aliasOf := aliasMap(items)

	for _, row := range src.rows {
		env.row = row
		proj := make(Row, len(items))
		for i, it := range items {
			v, err := eval(it.Expr, env)
			if err != nil {
				return nil, err
			}
			proj[i] = v
		}
		if len(s.OrderBy) == 0 {
			res.Rows = append(res.Rows, proj)
			continue
		}
		keys, err := orderKeys(s.OrderBy, env, aliasOf, proj)
		if err != nil {
			return nil, err
		}
		tagged = append(tagged, sortable{proj: proj, keys: keys})
	}

	if len(s.OrderBy) > 0 {
		sort.SliceStable(tagged, func(i, j int) bool {
			return orderLess(tagged[i].keys, tagged[j].keys, s.OrderBy)
		})
		for _, t := range tagged {
			res.Rows = append(res.Rows, t.proj)
		}
	}
	return res, nil
}

// aliasMap maps lower-cased select aliases to projected ordinals.
func aliasMap(items []SelectItem) map[string]int {
	m := make(map[string]int, len(items))
	for i, it := range items {
		if it.Alias != "" {
			m[strings.ToLower(it.Alias)] = i
		}
	}
	return m
}

// orderKeys evaluates ORDER BY key expressions; a bare identifier matching a
// select alias uses the projected value.
func orderKeys(order []OrderItem, env *evalEnv, aliasOf map[string]int, proj Row) (Row, error) {
	keys := make(Row, len(order))
	for i, oi := range order {
		if cr, ok := oi.Expr.(*ColRef); ok && cr.Table == "" {
			if ord, hit := aliasOf[strings.ToLower(cr.Name)]; hit {
				keys[i] = proj[ord]
				continue
			}
		}
		// ORDER BY <n> selects the n-th output column.
		if lit, ok := oi.Expr.(*Literal); ok && lit.Val.Kind == TypeInt && !lit.Val.Null {
			ord := int(lit.Val.Int)
			if ord < 1 || ord > len(proj) {
				return nil, fmt.Errorf("sql: ORDER BY ordinal %d out of range", ord)
			}
			keys[i] = proj[ord-1]
			continue
		}
		v, err := eval(oi.Expr, env)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func orderLess(a, b Row, order []OrderItem) bool {
	for i, oi := range order {
		c := Compare(a[i], b[i])
		if c == 0 {
			continue
		}
		if oi.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// execGrouped implements GROUP BY / HAVING / aggregate projection. With no
// GROUP BY, all rows form one group (and an empty input yields one group of
// zero rows, per SQL).
func (db *Database) execGrouped(s *SelectStmt, items []SelectItem, src *rel) (*Result, error) {
	res := &Result{}
	for i, it := range items {
		res.Columns = append(res.Columns, itemName(it, i))
	}

	aggCalls := collectAggCalls(s, items)

	// Partition rows into groups.
	env := src.env()
	type group struct {
		rows []Row
	}
	groups := make(map[string]*group)
	var orderOfGroups []string
	for _, row := range src.rows {
		env.row = row
		key := ""
		if len(s.GroupBy) > 0 {
			vals := make([]Value, len(s.GroupBy))
			for i, ge := range s.GroupBy {
				v, err := eval(ge, env)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			key = encodeKey(vals)
		}
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			orderOfGroups = append(orderOfGroups, key)
		}
		g.rows = append(g.rows, row)
	}
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{}
		orderOfGroups = append(orderOfGroups, "")
	}

	aliasOf := aliasMap(items)
	type sortable struct {
		proj Row
		keys Row
	}
	var tagged []sortable

	for _, key := range orderOfGroups {
		g := groups[key]
		aggs := make(map[string]Value, len(aggCalls))
		for _, f := range aggCalls {
			v, err := computeAggregate(f, g.rows, src)
			if err != nil {
				return nil, err
			}
			aggs[f.String()] = v
		}
		genv := &evalEnv{cols: src.cols, aggs: aggs}
		if len(g.rows) > 0 {
			genv.row = g.rows[0]
		} else {
			genv.row = make(Row, len(src.cols)) // all NULLs
		}
		if s.Having != nil {
			v, err := eval(s.Having, genv)
			if err != nil {
				return nil, err
			}
			if b, ok := v.Truthy(); !ok || !b {
				continue
			}
		}
		proj := make(Row, len(items))
		for i, it := range items {
			v, err := eval(it.Expr, genv)
			if err != nil {
				return nil, err
			}
			proj[i] = v
		}
		if len(s.OrderBy) == 0 {
			res.Rows = append(res.Rows, proj)
			continue
		}
		keys, err := orderKeys(s.OrderBy, genv, aliasOf, proj)
		if err != nil {
			return nil, err
		}
		tagged = append(tagged, sortable{proj: proj, keys: keys})
	}

	if len(s.OrderBy) > 0 {
		sort.SliceStable(tagged, func(i, j int) bool {
			return orderLess(tagged[i].keys, tagged[j].keys, s.OrderBy)
		})
		for _, t := range tagged {
			res.Rows = append(res.Rows, t.proj)
		}
	}
	return res, nil
}

// collectAggCalls gathers every distinct aggregate call appearing in the
// select items, HAVING, and ORDER BY, deduplicated by rendered text (shared
// by the row and batched group-by implementations).
func collectAggCalls(s *SelectStmt, items []SelectItem) []*FuncCall {
	var aggCalls []*FuncCall
	seenAgg := make(map[string]bool)
	collect := func(e Expr) {
		for _, f := range findAggregates(e) {
			if !seenAgg[f.String()] {
				seenAgg[f.String()] = true
				aggCalls = append(aggCalls, f)
			}
		}
	}
	for _, it := range items {
		collect(it.Expr)
	}
	collect(s.Having)
	for _, oi := range s.OrderBy {
		collect(oi.Expr)
	}
	return aggCalls
}

// findAggregates returns the aggregate calls in an expression tree.
func findAggregates(e Expr) []*FuncCall {
	var out []*FuncCall
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *FuncCall:
			if x.IsAggregate() {
				out = append(out, x)
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Unary:
			walk(x.X)
		case *IsNull:
			walk(x.X)
		case *InList:
			walk(x.X)
			for _, a := range x.List {
				walk(a)
			}
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		}
	}
	walk(e)
	return out
}

// computeAggregate evaluates one aggregate call over a group's rows.
func computeAggregate(f *FuncCall, rows []Row, src *rel) (Value, error) {
	env := src.env()
	if f.Star { // COUNT(*)
		return IntValue(int64(len(rows))), nil
	}
	arg := f.Args[0]
	var vals []Value
	seen := make(map[string]bool)
	for _, row := range rows {
		env.row = row
		v, err := eval(arg, env)
		if err != nil {
			return Value{}, err
		}
		if v.Null {
			continue // aggregates skip NULLs
		}
		if f.Distinct {
			k := encodeKey([]Value{v})
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch f.Name {
	case "COUNT":
		return IntValue(int64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return NullValue(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := Compare(v, best)
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return NullValue(), nil
		}
		allInt := true
		var fsum float64
		var isum int64
		for _, v := range vals {
			fv, ok := v.AsFloat()
			if !ok {
				return Value{}, fmt.Errorf("sql: %s over non-numeric values", f.Name)
			}
			fsum += fv
			if v.Kind == TypeInt {
				isum += v.Int
			} else {
				allInt = false
			}
		}
		if f.Name == "SUM" {
			if allInt {
				return IntValue(isum), nil
			}
			return FloatValue(fsum), nil
		}
		return FloatValue(fsum / float64(len(vals))), nil
	}
	return Value{}, fmt.Errorf("sql: unknown aggregate %s", f.Name)
}

// ---- FROM clause construction (scans + joins with pushdown) ----

// scanSpec pairs one FROM/JOIN table reference with its resolved table.
type scanSpec struct {
	ref TableRef
	t   *Table
}

// fromSpecs resolves every FROM and JOIN table reference, builds the
// combined binding list (with display names), and partitions the WHERE
// clause into per-binding pushed filters and residual conjuncts. LEFT JOIN
// right sides keep their filters residual to preserve null-extension
// semantics. Shared by the row and batched executors.
func (db *Database) fromSpecs(s *SelectStmt) (specs []scanSpec, allCols []colBinding, names []string, pushed map[string][]Expr, residual []Expr, err error) {
	for _, tr := range s.From {
		t, terr := db.table(tr.Name)
		if terr != nil {
			return nil, nil, nil, nil, nil, terr
		}
		specs = append(specs, scanSpec{ref: tr, t: t})
	}
	for _, jc := range s.Joins {
		t, terr := db.table(jc.Table.Name)
		if terr != nil {
			return nil, nil, nil, nil, nil, terr
		}
		specs = append(specs, scanSpec{ref: jc.Table, t: t})
	}
	allCols = make([]colBinding, 0)
	seenBinding := make(map[string]bool)
	for _, sp := range specs {
		b := strings.ToLower(sp.ref.Binding())
		if seenBinding[b] {
			return nil, nil, nil, nil, nil, fmt.Errorf("sql: duplicate table binding %s", sp.ref.Binding())
		}
		seenBinding[b] = true
		for _, c := range sp.t.schema.Columns {
			allCols = append(allCols, colBinding{table: b, name: strings.ToLower(c.Name)})
			names = append(names, c.Name)
		}
	}

	// Partition WHERE conjuncts: pushable to a single binding vs residual.
	conjuncts := splitConjuncts(s.Where)
	pushed = make(map[string][]Expr)
	for _, conj := range conjuncts {
		if tbl, ok := singleBinding(conj, allCols); ok {
			pushed[tbl] = append(pushed[tbl], conj)
		} else {
			residual = append(residual, conj)
		}
	}

	// LEFT JOIN right sides must not have pushed filters applied before the
	// join (it would change null-extension semantics); move them back.
	for _, jc := range s.Joins {
		if jc.Kind == "LEFT" {
			b := strings.ToLower(jc.Table.Binding())
			residual = append(residual, pushed[b]...)
			delete(pushed, b)
		}
	}
	return specs, allCols, names, pushed, residual, nil
}

// buildFrom materialises the FROM relation and returns the WHERE conjuncts
// that were not pushed into scans.
func (db *Database) buildFrom(s *SelectStmt) (*rel, []Expr, error) {
	if len(s.From) == 0 {
		// SELECT without FROM: one empty row.
		return &rel{rows: []Row{{}}}, splitConjuncts(s.Where), nil
	}

	specs, _, _, pushed, residual, err := db.fromSpecs(s)
	if err != nil {
		return nil, nil, err
	}

	scanOne := func(sp scanSpec) (*rel, error) {
		b := strings.ToLower(sp.ref.Binding())
		filter := andAll(pushed[b])
		env := &evalEnv{}
		for _, c := range sp.t.schema.Columns {
			env.cols = append(env.cols, colBinding{table: b, name: strings.ToLower(c.Name)})
		}
		ids, err := matchingRowIDs(sp.t, filter, env)
		if err != nil {
			return nil, err
		}
		r := &rel{}
		for _, c := range sp.t.schema.Columns {
			r.cols = append(r.cols, colBinding{table: b, name: strings.ToLower(c.Name)})
			r.names = append(r.names, c.Name)
		}
		for _, id := range ids {
			if row, ok := sp.t.rowByID(id); ok {
				r.rows = append(r.rows, row)
			}
		}
		return r, nil
	}

	cur, err := scanOne(specs[0])
	if err != nil {
		return nil, nil, err
	}
	// Comma-joined FROM tables: cross products (residual WHERE applies later).
	for i := 1; i < len(s.From); i++ {
		right, err := scanOne(specs[i])
		if err != nil {
			return nil, nil, err
		}
		cur = crossJoin(cur, right)
	}
	// Explicit JOIN clauses.
	for ji, jc := range s.Joins {
		right, err := scanOne(specs[len(s.From)+ji])
		if err != nil {
			return nil, nil, err
		}
		switch jc.Kind {
		case "CROSS":
			cur = crossJoin(cur, right)
		case "INNER":
			cur, err = innerJoin(cur, right, jc.On)
		case "LEFT":
			cur, err = leftJoin(cur, right, jc.On)
		default:
			err = fmt.Errorf("sql: unsupported join kind %s", jc.Kind)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	return cur, residual, nil
}

// singleBinding reports whether every column in the expression resolves to
// one binding (returned lower-cased). Expressions with no columns are not
// pushable (they are constants; evaluating them once in residual is fine).
func singleBinding(e Expr, all []colBinding) (string, bool) {
	refs := collectColRefs(e)
	if len(refs) == 0 {
		return "", false
	}
	binding := ""
	for _, cr := range refs {
		b, ok := resolveBinding(cr, all)
		if !ok {
			return "", false
		}
		if binding == "" {
			binding = b
		} else if binding != b {
			return "", false
		}
	}
	return binding, true
}

func resolveBinding(cr *ColRef, all []colBinding) (string, bool) {
	tbl := strings.ToLower(cr.Table)
	name := strings.ToLower(cr.Name)
	if tbl != "" {
		for _, b := range all {
			if b.table == tbl && b.name == name {
				return tbl, true
			}
		}
		return "", false
	}
	found := ""
	for _, b := range all {
		if b.name == name {
			if found != "" && found != b.table {
				return "", false // ambiguous
			}
			found = b.table
		}
	}
	return found, found != ""
}

func collectColRefs(e Expr) []*ColRef {
	var out []*ColRef
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *ColRef:
			out = append(out, x)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Unary:
			walk(x.X)
		case *IsNull:
			walk(x.X)
		case *InList:
			walk(x.X)
			for _, a := range x.List {
				walk(a)
			}
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

func andAll(exprs []Expr) Expr {
	if len(exprs) == 0 {
		return nil
	}
	e := exprs[0]
	for _, next := range exprs[1:] {
		e = &Binary{Op: "AND", L: e, R: next}
	}
	return e
}

func joinedRel(l, r *rel) *rel {
	out := &rel{
		cols:  append(append([]colBinding(nil), l.cols...), r.cols...),
		names: append(append([]string(nil), l.names...), r.names...),
	}
	return out
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func crossJoin(l, r *rel) *rel {
	out := joinedRel(l, r)
	for _, lr := range l.rows {
		for _, rr := range r.rows {
			out.rows = append(out.rows, concatRows(lr, rr))
		}
	}
	return out
}

// equiKeys extracts `left = right` column pairs from an ON expression when
// the whole condition is a conjunction of such equalities, enabling a hash
// join. Returns nil when the shape doesn't match.
func equiKeys(on Expr, lcols, rcols []colBinding) (lk, rk []int) {
	for _, conj := range splitConjuncts(on) {
		b, ok := conj.(*Binary)
		if !ok || b.Op != "=" {
			return nil, nil
		}
		lc, lok := b.L.(*ColRef)
		rc, rok := b.R.(*ColRef)
		if !lok || !rok {
			return nil, nil
		}
		li, lerr := (&evalEnv{cols: lcols}).resolve(lc)
		ri, rerr := (&evalEnv{cols: rcols}).resolve(rc)
		if lerr == nil && rerr == nil {
			lk = append(lk, li)
			rk = append(rk, ri)
			continue
		}
		// Try swapped sides.
		li, lerr = (&evalEnv{cols: lcols}).resolve(rc)
		ri, rerr = (&evalEnv{cols: rcols}).resolve(lc)
		if lerr == nil && rerr == nil {
			lk = append(lk, li)
			rk = append(rk, ri)
			continue
		}
		return nil, nil
	}
	return lk, rk
}

func innerJoin(l, r *rel, on Expr) (*rel, error) {
	out := joinedRel(l, r)
	if lk, rk := equiKeys(on, l.cols, r.cols); lk != nil {
		// Hash join.
		ht := make(map[string][]Row, len(r.rows))
		for _, rr := range r.rows {
			vals := make([]Value, len(rk))
			null := false
			for i, ord := range rk {
				vals[i] = rr[ord]
				null = null || rr[ord].Null
			}
			if null {
				continue
			}
			k := encodeKey(vals)
			ht[k] = append(ht[k], rr)
		}
		for _, lr := range l.rows {
			vals := make([]Value, len(lk))
			null := false
			for i, ord := range lk {
				vals[i] = lr[ord]
				null = null || lr[ord].Null
			}
			if null {
				continue
			}
			for _, rr := range ht[encodeKey(vals)] {
				out.rows = append(out.rows, concatRows(lr, rr))
			}
		}
		return out, nil
	}
	// Nested loop fallback for arbitrary ON conditions.
	env := &evalEnv{cols: out.cols}
	for _, lr := range l.rows {
		for _, rr := range r.rows {
			row := concatRows(lr, rr)
			env.row = row
			v, err := eval(on, env)
			if err != nil {
				return nil, err
			}
			if b, ok := v.Truthy(); ok && b {
				out.rows = append(out.rows, row)
			}
		}
	}
	return out, nil
}

func leftJoin(l, r *rel, on Expr) (*rel, error) {
	out := joinedRel(l, r)
	env := &evalEnv{cols: out.cols}
	nulls := make(Row, len(r.cols))
	for i := range nulls {
		nulls[i] = NullValue()
	}
	for _, lr := range l.rows {
		matched := false
		for _, rr := range r.rows {
			row := concatRows(lr, rr)
			env.row = row
			v, err := eval(on, env)
			if err != nil {
				return nil, err
			}
			if b, ok := v.Truthy(); ok && b {
				matched = true
				out.rows = append(out.rows, row)
			}
		}
		if !matched {
			out.rows = append(out.rows, concatRows(lr, nulls))
		}
	}
	return out, nil
}
