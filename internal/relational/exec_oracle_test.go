package relational

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// oracleSchema is shared by both engines in the equivalence tests: two
// joinable tables with NULLs and duplicates, plus an empty table.
const oracleSchema = `
CREATE TABLE dept (dno INT PRIMARY KEY, dname VARCHAR(16), budget FLOAT);
CREATE TABLE emp (eno INT PRIMARY KEY, ename VARCHAR(16), dno INT, sal INT, note VARCHAR(16));
CREATE TABLE void (x INT, y VARCHAR(8));
INSERT INTO dept VALUES (1, 'surgery', 100.5);
INSERT INTO dept VALUES (2, 'radiology', 80.25);
INSERT INTO dept VALUES (3, 'archive', NULL);
INSERT INTO emp VALUES (10, 'alice', 1, 120, 'senior');
INSERT INTO emp VALUES (11, 'bob', 1, 90, NULL);
INSERT INTO emp VALUES (12, 'carol', 2, 90, 'locum');
INSERT INTO emp VALUES (13, 'dave', NULL, 70, 'temp');
INSERT INTO emp VALUES (14, 'erin', 9, 110, 'visiting');
INSERT INTO emp VALUES (15, 'Frank', 2, NULL, 'locum');
`

// newOraclePair builds two identically-populated databases, the first on the
// batched columnar executor and the second forced onto the seed row-at-a-time
// interpreter.
func newOraclePair(t testing.TB) (*Database, *Database) {
	t.Helper()
	vec := NewDatabase("vec", DialectOracle)
	row := NewDatabase("row", DialectOracle)
	row.rowExec = true
	for _, db := range []*Database{vec, row} {
		if _, err := db.ExecScript(oracleSchema); err != nil {
			t.Fatal(err)
		}
	}
	return vec, row
}

// checkSameResult runs one query on both engines and requires byte-identical
// Results, or errors from both (messages may differ: the engines evaluate in
// different orders, so only error presence is part of the contract).
func checkSameResult(t *testing.T, vec, row *Database, q string) {
	t.Helper()
	rv, errV := vec.Query(q)
	rr, errR := row.Query(q)
	if (errV != nil) != (errR != nil) {
		t.Fatalf("engines disagree on error for %q:\n  vec: %v\n  row: %v", q, errV, errR)
	}
	if errV != nil {
		return
	}
	if !reflect.DeepEqual(rv, rr) {
		t.Fatalf("engines disagree for %q:\nvec:\n%s\nrow:\n%s", q, rv.Format(), rr.Format())
	}
}

// TestVecMatchesRowOracle drives both executors over a corpus covering every
// SELECT shape the engine supports and requires identical results.
func TestVecMatchesRowOracle(t *testing.T) {
	vec, row := newOraclePair(t)
	corpus := []string{
		// Plain scans, projection, expressions, t.*.
		"SELECT * FROM emp",
		"SELECT emp.* FROM emp",
		"SELECT eno, ename FROM emp",
		"SELECT eno + 1, sal * 2, ename || '!' FROM emp",
		"SELECT * FROM void",
		"SELECT 1 + 2, 'x' || 'y'",
		"SELECT DISTINCT note FROM emp",
		"SELECT DISTINCT dno, note FROM emp",
		// Filters: comparisons, 3VL, LIKE, IN, BETWEEN, IS [NOT] NULL.
		"SELECT eno FROM emp WHERE sal > 90",
		"SELECT eno FROM emp WHERE 90 < sal",
		"SELECT eno FROM emp WHERE sal > 80 AND dno = 1",
		"SELECT eno FROM emp WHERE sal > 100 OR note = 'locum'",
		"SELECT eno FROM emp WHERE NOT sal > 90",
		"SELECT eno FROM emp WHERE ename LIKE '%a%'",
		"SELECT eno FROM emp WHERE ename LIKE '_ob'",
		"SELECT eno FROM emp WHERE dno IN (1, 2)",
		"SELECT eno FROM emp WHERE dno IN (1, sal - 89)",
		"SELECT eno FROM emp WHERE sal BETWEEN 80 AND 110",
		"SELECT eno FROM emp WHERE note IS NULL",
		"SELECT eno FROM emp WHERE note IS NOT NULL",
		"SELECT eno FROM emp WHERE sal IS NULL AND note IS NOT NULL",
		"SELECT eno FROM emp WHERE sal = NULL",
		"SELECT x FROM void WHERE x > 0",
		// Scalar functions.
		"SELECT UPPER(ename), LOWER(note) FROM emp",
		"SELECT LENGTH(ename) FROM emp WHERE LENGTH(ename) > 3",
		"SELECT ABS(0 - sal), ROUND(sal / 7.0) FROM emp",
		"SELECT COALESCE(note, 'none'), SUBSTR(ename, 1, 2) FROM emp",
		// Joins: comma, INNER (hash + non-equi nested), LEFT, CROSS.
		"SELECT ename, dname FROM emp, dept WHERE emp.dno = dept.dno",
		"SELECT ename, dname FROM emp JOIN dept ON emp.dno = dept.dno",
		"SELECT e.ename, d.dname FROM emp e INNER JOIN dept d ON e.dno = d.dno",
		"SELECT e.ename, d.dname FROM emp e LEFT JOIN dept d ON e.dno = d.dno",
		"SELECT e.ename, d.dname FROM emp e LEFT JOIN dept d ON e.dno = d.dno AND d.budget > 90",
		"SELECT e.ename, d.dname FROM emp e JOIN dept d ON e.sal > d.budget",
		"SELECT e.ename, d.dname FROM emp e CROSS JOIN dept d",
		"SELECT e.ename, v.x FROM emp e LEFT JOIN void v ON e.eno = v.x",
		"SELECT a.eno, b.eno FROM emp a JOIN emp b ON a.dno = b.dno WHERE a.eno < b.eno",
		"SELECT ename, dname FROM emp JOIN dept ON emp.dno = dept.dno WHERE sal >= 90 ORDER BY ename",
		// Aggregates and grouping.
		"SELECT COUNT(*) FROM emp",
		"SELECT COUNT(*) FROM void",
		"SELECT COUNT(note), COUNT(DISTINCT note) FROM emp",
		"SELECT SUM(sal), AVG(sal), MIN(sal), MAX(sal) FROM emp",
		"SELECT SUM(budget), AVG(budget) FROM dept",
		"SELECT SUM(sal) FROM void",
		"SELECT dno, COUNT(*), SUM(sal) FROM emp GROUP BY dno",
		"SELECT dno, COUNT(*) FROM emp GROUP BY dno HAVING COUNT(*) > 1",
		"SELECT note, MIN(sal), MAX(sal) FROM emp GROUP BY note ORDER BY note",
		"SELECT dno, AVG(sal) FROM emp GROUP BY dno HAVING AVG(sal) >= 90 ORDER BY dno",
		"SELECT d.dname, COUNT(*) FROM emp e JOIN dept d ON e.dno = d.dno GROUP BY d.dname",
		"SELECT dno + 0, COUNT(DISTINCT note) FROM emp GROUP BY dno + 0",
		// ORDER BY: column, alias, ordinal, DESC, multiple keys.
		"SELECT eno FROM emp ORDER BY sal",
		"SELECT eno FROM emp ORDER BY sal DESC, eno",
		"SELECT eno, sal AS pay FROM emp ORDER BY pay DESC",
		"SELECT eno, sal FROM emp ORDER BY 2, 1",
		"SELECT ename FROM emp ORDER BY LENGTH(ename), ename",
		// LIMIT/OFFSET and DISTINCT composition.
		"SELECT eno FROM emp ORDER BY eno LIMIT 3",
		"SELECT eno FROM emp ORDER BY eno LIMIT 2 OFFSET 3",
		"SELECT DISTINCT note FROM emp ORDER BY note LIMIT 2",
		// UNION / UNION ALL.
		"SELECT eno FROM emp WHERE sal > 100 UNION ALL SELECT eno FROM emp WHERE note = 'locum'",
		"SELECT dno FROM emp UNION SELECT dno FROM dept",
		"SELECT x FROM void UNION SELECT eno FROM emp WHERE sal > 115",
		// Subqueries.
		"SELECT ename FROM emp WHERE dno IN (SELECT dno FROM dept WHERE budget > 90)",
		"SELECT ename FROM emp WHERE dno NOT IN (SELECT dno FROM dept)",
		"SELECT ename FROM emp WHERE sal > (SELECT AVG(sal) FROM emp)",
		"SELECT ename FROM emp WHERE EXISTS (SELECT * FROM void)",
		"SELECT ename FROM emp WHERE NOT EXISTS (SELECT * FROM void)",
		// Errors must surface from both engines (division by zero, unknown
		// column, aggregate misuse, bad ordinal).
		"SELECT sal / 0 FROM emp",
		"SELECT sal % 0 FROM emp",
		"SELECT 1 / 0 FROM void",
		"SELECT nosuch FROM emp",
		"SELECT eno FROM emp WHERE SUM(sal) > 0",
		"SELECT eno FROM emp ORDER BY 9",
	}
	for _, q := range corpus {
		checkSameResult(t, vec, row, q)
	}
}

// TestVecMatchesRowRandom cross-checks the engines over randomly generated
// filter/group/order combinations on a randomly populated table.
func TestVecMatchesRowRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vec := NewDatabase("vec", DialectOracle)
		row := NewDatabase("row", DialectOracle)
		row.rowExec = true
		for _, db := range []*Database{vec, row} {
			if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT, w FLOAT, s VARCHAR(8))"); err != nil {
				t.Fatal(err)
			}
		}
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			v := rng.Intn(10)
			var val string
			if rng.Intn(8) == 0 {
				val = fmt.Sprintf("(%d, NULL, %d.5, 's%d')", i, v, v%4)
			} else {
				val = fmt.Sprintf("(%d, %d, %d.5, 's%d')", i, v, rng.Intn(10), v%4)
			}
			q := "INSERT INTO t VALUES " + val
			for _, db := range []*Database{vec, row} {
				if _, err := db.Exec(q); err != nil {
					t.Fatal(err)
				}
			}
		}
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		for i := 0; i < 40; i++ {
			pred := fmt.Sprintf("v %s %d", ops[rng.Intn(len(ops))], rng.Intn(10))
			if rng.Intn(2) == 0 {
				pred = fmt.Sprintf("%s %s w %s %d.5", pred,
					[]string{"AND", "OR"}[rng.Intn(2)], ops[rng.Intn(len(ops))], rng.Intn(10))
			}
			var q string
			switch rng.Intn(3) {
			case 0:
				q = fmt.Sprintf("SELECT id, v, s FROM t WHERE %s ORDER BY id", pred)
			case 1:
				q = fmt.Sprintf("SELECT s, COUNT(*), SUM(v), AVG(w) FROM t WHERE %s GROUP BY s ORDER BY s", pred)
			default:
				q = fmt.Sprintf("SELECT a.id, b.id FROM t a JOIN t b ON a.v = b.v WHERE a.v %s %d AND a.id < b.id ORDER BY a.id, b.id",
					ops[rng.Intn(len(ops))], rng.Intn(10))
			}
			checkSameResult(t, vec, row, q)
		}
	}
}
