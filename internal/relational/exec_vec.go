package relational

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the batched (vectorized) SELECT executor. It mirrors the
// row-at-a-time interpreter in exec.go operator for operator — same
// pushdown, same join dispatch, same group semantics, same output order —
// but moves data in column vectors of up to vecChunk rows per call.
// exec.go's execSelectArmRows is retained as the oracle this engine is
// property-tested against: for any statement, both produce equal Results,
// or both fail.

// vecRel is an intermediate relation in columnar form: one value vector per
// binding. A nil vector marks a column no expression in the statement
// references; such columns are carried as bindings (for name resolution)
// but never materialised.
type vecRel struct {
	cols  []colBinding
	names []string
	vecs  [][]Value
	n     int
}

// execSelectArmVec runs one SELECT arm with the batched executor.
// DISTINCT/OFFSET/LIMIT are applied by the caller (execSelectArm).
func (db *Database) execSelectArmVec(s *SelectStmt) (*Result, error) {
	c := getVctx()
	defer c.release()

	var src *vecRel
	var residual []Expr
	var items []SelectItem
	if len(s.From) == 0 {
		// SELECT without FROM: one empty row, all conjuncts residual.
		src = &vecRel{n: 1}
		residual = splitConjuncts(s.Where)
		var err error
		items, err = expandStars(s.Items, nil, nil)
		if err != nil {
			return nil, err
		}
	} else {
		specs, allCols, names, pushed, res0, err := db.fromSpecs(s)
		if err != nil {
			return nil, err
		}
		items, err = expandStars(s.Items, allCols, names)
		if err != nil {
			return nil, err
		}
		residual = res0
		ref := referencedOrdinals(s, items, allCols)

		rels := make([]*vecRel, len(specs))
		base := 0
		for i, sp := range specs {
			nc := len(sp.t.schema.Columns)
			b := strings.ToLower(sp.ref.Binding())
			rels[i], err = scanOneVec(c, sp, andAll(pushed[b]), ref[base:base+nc])
			if err != nil {
				return nil, err
			}
			base += nc
		}

		cur := rels[0]
		for i := 1; i < len(s.From); i++ {
			cur = crossJoinVec(cur, rels[i])
		}
		for ji, jc := range s.Joins {
			right := rels[len(s.From)+ji]
			switch jc.Kind {
			case "CROSS":
				cur = crossJoinVec(cur, right)
			case "INNER":
				cur, err = innerJoinVec(c, cur, right, jc.On)
			case "LEFT":
				cur, err = nestedJoinVec(c, cur, right, jc.On, true)
			default:
				err = fmt.Errorf("sql: unsupported join kind %s", jc.Kind)
			}
			if err != nil {
				return nil, err
			}
		}
		src = cur
	}

	if len(residual) > 0 {
		var err error
		src, err = filterVec(c, src, residual)
		if err != nil {
			return nil, err
		}
	}

	grouped := len(s.GroupBy) > 0 || s.Having != nil || anyAggregate(items)
	if grouped {
		return execGroupedVec(c, s, items, src)
	}
	return execPlainVec(c, s, items, src)
}

// referencedOrdinals marks every source column the statement can read:
// select items (post star expansion, so aggregate arguments are included),
// WHERE, join ON conditions, GROUP BY, HAVING and ORDER BY. Unmarked
// columns are never materialised. Unresolvable references are ignored here;
// evaluation reports them (or not, on empty input) exactly as the
// interpreter does.
func referencedOrdinals(s *SelectStmt, items []SelectItem, allCols []colBinding) []bool {
	ref := make([]bool, len(allCols))
	env := &evalEnv{cols: allCols}
	mark := func(e Expr) {
		for _, cr := range collectColRefs(e) {
			if ord, err := env.resolve(cr); err == nil {
				ref[ord] = true
				continue
			}
			// Joint resolution failed (ambiguous or unknown). Join-key
			// resolution happens per side (equiKeys), which can succeed
			// where the joint scope is ambiguous, so over-mark every
			// column the name could mean; over-marking only costs
			// materialisation, never correctness.
			name := strings.ToLower(cr.Name)
			tbl := strings.ToLower(cr.Table)
			for i, cb := range allCols {
				if cb.name == name && (tbl == "" || cb.table == tbl) {
					ref[i] = true
				}
			}
		}
	}
	for _, it := range items {
		mark(it.Expr)
	}
	mark(s.Where)
	for _, jc := range s.Joins {
		mark(jc.On)
	}
	for _, ge := range s.GroupBy {
		mark(ge)
	}
	mark(s.Having)
	for _, oi := range s.OrderBy {
		mark(oi.Expr)
	}
	return ref
}

// emptyVec is the shared zero-row column vector: non-nil so it reads as a
// referenced (just empty) column, never as an unreferenced one.
var emptyVec = make([]Value, 0)

// scanOneVec scans one table with an optional pushed-down filter, producing
// vectors for the referenced columns only. Row order matches the
// interpreter: slot (insertion) order for full scans, ascending row ID for
// the single-column-index equality path.
func scanOneVec(c *vctx, sp scanSpec, filter Expr, ref []bool) (*vecRel, error) {
	t := sp.t
	bnd := strings.ToLower(sp.ref.Binding())
	out := &vecRel{}
	for _, col := range t.schema.Columns {
		out.cols = append(out.cols, colBinding{table: bnd, name: strings.ToLower(col.Name)})
		out.names = append(out.names, col.Name)
	}
	nc := len(t.cols)
	out.vecs = make([][]Value, nc)

	// Unfiltered, fully-live table: alias the storage vectors, zero copies.
	// Callers only read them (and only under the database lock). A nil vec
	// means "unreferenced" everywhere downstream, so a never-inserted
	// table's nil storage slices must still surface as empty non-nil vecs.
	if filter == nil && t.dead == 0 {
		for i := 0; i < nc; i++ {
			if ref[i] {
				if t.cols[i] != nil {
					out.vecs[i] = t.cols[i]
				} else {
					out.vecs[i] = emptyVec
				}
			}
		}
		out.n = len(t.ids)
		return out, nil
	}

	env := &evalEnv{cols: out.cols}

	// Index point-lookup path: candidate sets are small, so the row-engine
	// helper is both fastest and trivially order-identical (sorted IDs).
	if _, _, ok := indexableEquality(t, filter, env); ok {
		ids, err := matchingRowIDs(t, filter, env)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nc; i++ {
			if ref[i] {
				out.vecs[i] = make([]Value, 0, len(ids))
			}
		}
		for _, id := range ids {
			slot, ok := t.slots[id]
			if !ok || !t.live[slot] {
				continue
			}
			for i := 0; i < nc; i++ {
				if ref[i] {
					out.vecs[i] = append(out.vecs[i], t.cols[i][slot])
				}
			}
			out.n++
		}
		return out, nil
	}

	var comp vexpr
	if filter != nil {
		comp = compileExpr(filter, out.cols)
	}
	for i := 0; i < nc; i++ {
		if ref[i] {
			out.vecs[i] = make([]Value, 0)
		}
	}
	batch := &vbatch{vecs: t.cols}
	vals := c.getVals()
	defer c.putVals(vals)
	sel := c.getSel()
	defer c.putSel(sel)
	nrows := len(t.ids)
	for base := 0; base < nrows; base += vecChunk {
		end := min(base+vecChunk, nrows)
		sel = sel[:0]
		for r := base; r < end; r++ {
			if t.live[r] {
				sel = append(sel, r)
			}
		}
		if len(sel) == 0 {
			continue
		}
		k := len(sel)
		if comp != nil {
			if err := comp.eval(c, batch, sel, vals); err != nil {
				return nil, err
			}
			k = 0
			for i, r := range sel {
				if b, ok := vals[i].Truthy(); ok && b {
					sel[k] = r
					k++
				}
			}
		}
		for i := 0; i < nc; i++ {
			if !ref[i] {
				continue
			}
			vec := t.cols[i]
			for _, r := range sel[:k] {
				out.vecs[i] = append(out.vecs[i], vec[r])
			}
		}
		out.n += k
	}
	return out, nil
}

func joinedVecRel(l, r *vecRel) *vecRel {
	return &vecRel{
		cols:  append(append([]colBinding(nil), l.cols...), r.cols...),
		names: append(append([]string(nil), l.names...), r.names...),
		vecs:  make([][]Value, len(l.vecs)+len(r.vecs)),
	}
}

// gatherPairs materialises a join result from pair index lists: output row k
// combines left row li[k] with right row ri[k] (ri[k] == -1 null-extends the
// right side, for LEFT JOIN). Only referenced columns are gathered.
func gatherPairs(out *vecRel, l, r *vecRel, li, ri []int) {
	out.n = len(li)
	for ci, vec := range l.vecs {
		if vec == nil {
			continue
		}
		g := make([]Value, len(li))
		for k, i := range li {
			g[k] = vec[i]
		}
		out.vecs[ci] = g
	}
	off := len(l.vecs)
	for ci, vec := range r.vecs {
		if vec == nil {
			continue
		}
		g := make([]Value, len(ri))
		for k, j := range ri {
			if j < 0 {
				g[k] = NullValue()
			} else {
				g[k] = vec[j]
			}
		}
		out.vecs[off+ci] = g
	}
}

func crossJoinVec(l, r *vecRel) *vecRel {
	out := joinedVecRel(l, r)
	n := l.n * r.n
	li := make([]int, 0, n)
	ri := make([]int, 0, n)
	for i := 0; i < l.n; i++ {
		for j := 0; j < r.n; j++ {
			li = append(li, i)
			ri = append(ri, j)
		}
	}
	gatherPairs(out, l, r, li, ri)
	return out
}

// innerJoinVec dispatches exactly like the interpreter: hash join when the
// ON clause is a conjunction of column equalities, nested loop otherwise.
func innerJoinVec(c *vctx, l, r *vecRel, on Expr) (*vecRel, error) {
	lk, rk := equiKeys(on, l.cols, r.cols)
	if lk == nil {
		return nestedJoinVec(c, l, r, on, false)
	}
	out := joinedVecRel(l, r)
	// Build side: right relation, rows with any NULL key skipped. Keys use
	// the same byte layout as encodeKey, built without per-row allocations
	// (probe-side lookups via map[string(buf)] do not allocate).
	ht := make(map[string][]int, r.n)
	var kbuf []byte
	for j := 0; j < r.n; j++ {
		kbuf = kbuf[:0]
		null := false
		for _, ord := range rk {
			v := r.vecs[ord][j]
			if v.Null {
				null = true
				break
			}
			kbuf = appendKeyValue(kbuf, v)
		}
		if null {
			continue
		}
		ht[string(kbuf)] = append(ht[string(kbuf)], j)
	}
	var li, ri []int
	for i := 0; i < l.n; i++ {
		kbuf = kbuf[:0]
		null := false
		for _, ord := range lk {
			v := l.vecs[ord][i]
			if v.Null {
				null = true
				break
			}
			kbuf = appendKeyValue(kbuf, v)
		}
		if null {
			continue
		}
		for _, j := range ht[string(kbuf)] {
			li = append(li, i)
			ri = append(ri, j)
		}
	}
	gatherPairs(out, l, r, li, ri)
	return out, nil
}

// nestedJoinVec evaluates an arbitrary ON condition over left×right pairs in
// chunks, gathering only the columns the condition references. With left
// set, unmatched left rows are null-extended immediately after their
// position, matching the interpreter's LEFT JOIN output order.
func nestedJoinVec(c *vctx, l, r *vecRel, on Expr, left bool) (*vecRel, error) {
	out := joinedVecRel(l, r)
	comp := compileExpr(on, out.cols)
	onRef := make([]bool, len(out.cols))
	env := &evalEnv{cols: out.cols}
	for _, cr := range collectColRefs(on) {
		if ord, err := env.resolve(cr); err == nil {
			onRef[ord] = true
		}
	}
	scratch := make([][]Value, len(out.cols))
	for ci := range scratch {
		if onRef[ci] {
			scratch[ci] = c.getVals()
			defer c.putVals(scratch[ci])
		}
	}
	batch := &vbatch{vecs: scratch}
	outv := c.getVals()
	defer c.putVals(outv)
	sel := c.getSel()
	defer c.putSel(sel)

	var li, ri []int
	nl := len(l.vecs)
	evalChunk := func(pli, pri []int) error {
		m := len(pli)
		for ci := 0; ci < nl; ci++ {
			if scratch[ci] == nil {
				continue
			}
			src := l.vecs[ci]
			for k := 0; k < m; k++ {
				scratch[ci][k] = src[pli[k]]
			}
		}
		for ci := nl; ci < len(scratch); ci++ {
			if scratch[ci] == nil {
				continue
			}
			src := r.vecs[ci-nl]
			for k := 0; k < m; k++ {
				scratch[ci][k] = src[pri[k]]
			}
		}
		sel = sel[:0]
		for k := 0; k < m; k++ {
			sel = append(sel, k)
		}
		if err := comp.eval(c, batch, sel, outv); err != nil {
			return err
		}
		for k := 0; k < m; k++ {
			if b, ok := outv[k].Truthy(); ok && b {
				li = append(li, pli[k])
				ri = append(ri, pri[k])
			}
		}
		return nil
	}

	pli := make([]int, 0, vecChunk)
	pri := make([]int, 0, vecChunk)
	if left {
		for i := 0; i < l.n; i++ {
			before := len(li)
			for base := 0; base < r.n; base += vecChunk {
				end := min(base+vecChunk, r.n)
				pli = pli[:0]
				pri = pri[:0]
				for j := base; j < end; j++ {
					pli = append(pli, i)
					pri = append(pri, j)
				}
				if err := evalChunk(pli, pri); err != nil {
					return nil, err
				}
			}
			if len(li) == before {
				li = append(li, i)
				ri = append(ri, -1)
			}
		}
	} else {
		for i := 0; i < l.n; i++ {
			for j := 0; j < r.n; j++ {
				pli = append(pli, i)
				pri = append(pri, j)
				if len(pli) == vecChunk {
					if err := evalChunk(pli, pri); err != nil {
						return nil, err
					}
					pli = pli[:0]
					pri = pri[:0]
				}
			}
		}
		if len(pli) > 0 {
			if err := evalChunk(pli, pri); err != nil {
				return nil, err
			}
		}
	}
	gatherPairs(out, l, r, li, ri)
	return out, nil
}

// filterVec applies residual WHERE conjuncts conjunct-major per chunk: each
// conjunct narrows the chunk's selection before the next is evaluated, so
// exactly the (row, conjunct) pairs the interpreter's short-circuit would
// evaluate are evaluated here.
func filterVec(c *vctx, src *vecRel, residual []Expr) (*vecRel, error) {
	comps := make([]vexpr, len(residual))
	for i, e := range residual {
		comps[i] = compileExpr(e, src.cols)
	}
	batch := &vbatch{vecs: src.vecs}
	vals := c.getVals()
	defer c.putVals(vals)
	sel := c.getSel()
	defer c.putSel(sel)
	var keep []int
	for base := 0; base < src.n; base += vecChunk {
		end := min(base+vecChunk, src.n)
		sel = sel[:0]
		for r := base; r < end; r++ {
			sel = append(sel, r)
		}
		for _, comp := range comps {
			if len(sel) == 0 {
				break
			}
			if err := comp.eval(c, batch, sel, vals); err != nil {
				return nil, err
			}
			k := 0
			for i, r := range sel {
				if b, ok := vals[i].Truthy(); ok && b {
					sel[k] = r
					k++
				}
			}
			sel = sel[:k]
		}
		keep = append(keep, sel...)
	}
	out := &vecRel{cols: src.cols, names: src.names, n: len(keep), vecs: make([][]Value, len(src.vecs))}
	for ci, vec := range src.vecs {
		if vec == nil {
			continue
		}
		g := make([]Value, len(keep))
		for k, r := range keep {
			g[k] = vec[r]
		}
		out.vecs[ci] = g
	}
	return out, nil
}

// execPlainVec projects without grouping, handling ORDER BY. Projections are
// evaluated column-major per chunk; sorting reuses the interpreter's key
// semantics (aliases, ordinals, stable sort).
func execPlainVec(c *vctx, s *SelectStmt, items []SelectItem, src *vecRel) (*Result, error) {
	res := &Result{}
	for i, it := range items {
		res.Columns = append(res.Columns, itemName(it, i))
	}
	if src.n == 0 {
		return res, nil
	}

	comps := make([]vexpr, len(items))
	for i, it := range items {
		comps[i] = compileExpr(it.Expr, src.cols)
	}

	// ORDER BY key plan: alias -> projected ordinal, integer literal ->
	// output ordinal (validated here; the interpreter validates per row, but
	// src.n > 0 makes the outcomes identical), anything else -> compiled
	// source expression.
	const (
		keyAlias = iota
		keyOrdinal
		keyExpr
	)
	type keyPlan struct {
		kind int
		ord  int
		comp vexpr
	}
	aliasOf := aliasMap(items)
	keys := make([]keyPlan, len(s.OrderBy))
	for i, oi := range s.OrderBy {
		if cr, ok := oi.Expr.(*ColRef); ok && cr.Table == "" {
			if ord, hit := aliasOf[strings.ToLower(cr.Name)]; hit {
				keys[i] = keyPlan{kind: keyAlias, ord: ord}
				continue
			}
		}
		if lit, ok := oi.Expr.(*Literal); ok && lit.Val.Kind == TypeInt && !lit.Val.Null {
			ord := int(lit.Val.Int)
			if ord < 1 || ord > len(items) {
				return nil, fmt.Errorf("sql: ORDER BY ordinal %d out of range", ord)
			}
			keys[i] = keyPlan{kind: keyOrdinal, ord: ord - 1}
			continue
		}
		keys[i] = keyPlan{kind: keyExpr, comp: compileExpr(oi.Expr, src.cols)}
	}

	type sortable struct {
		proj Row
		keys Row
	}
	var tagged []sortable

	batch := &vbatch{vecs: src.vecs}
	bufs := make([][]Value, len(items))
	for i := range bufs {
		bufs[i] = c.getVals()
		defer c.putVals(bufs[i])
	}
	var keyBufs [][]Value
	for _, kp := range keys {
		if kp.kind == keyExpr {
			b := c.getVals()
			defer c.putVals(b)
			keyBufs = append(keyBufs, b)
		} else {
			keyBufs = append(keyBufs, nil)
		}
	}
	sel := c.getSel()
	defer c.putSel(sel)

	for base := 0; base < src.n; base += vecChunk {
		end := min(base+vecChunk, src.n)
		sel = sel[:0]
		for r := base; r < end; r++ {
			sel = append(sel, r)
		}
		for i, comp := range comps {
			if err := comp.eval(c, batch, sel, bufs[i]); err != nil {
				return nil, err
			}
		}
		for i, kp := range keys {
			if kp.kind == keyExpr {
				if err := kp.comp.eval(c, batch, sel, keyBufs[i]); err != nil {
					return nil, err
				}
			}
		}
		for j := 0; j < end-base; j++ {
			proj := make(Row, len(items))
			for i := range items {
				proj[i] = bufs[i][j]
			}
			if len(s.OrderBy) == 0 {
				res.Rows = append(res.Rows, proj)
				continue
			}
			kr := make(Row, len(keys))
			for i, kp := range keys {
				switch kp.kind {
				case keyAlias:
					kr[i] = proj[kp.ord]
				case keyOrdinal:
					kr[i] = proj[kp.ord]
				default:
					kr[i] = keyBufs[i][j]
				}
			}
			tagged = append(tagged, sortable{proj: proj, keys: kr})
		}
	}

	if len(s.OrderBy) > 0 {
		sort.SliceStable(tagged, func(i, j int) bool {
			return orderLess(tagged[i].keys, tagged[j].keys, s.OrderBy)
		})
		for _, t := range tagged {
			res.Rows = append(res.Rows, t.proj)
		}
	}
	return res, nil
}

// aggAcc streams one aggregate call for one group, mirroring
// computeAggregate: NULLs skipped, DISTINCT deduplicated by encoded key,
// SUM stays integral while every input is integral.
type aggAcc struct {
	n       int64
	best    Value
	hasBest bool
	fsum    float64
	isum    int64
	allInt  bool
	seen    map[string]bool
}

type vgroup struct {
	first int // source row ordinal of the group's first row; -1 when empty
	rows  int64
	accs  []aggAcc
}

// execGroupedVec implements GROUP BY / HAVING / aggregate projection with
// streaming accumulators: one pass over the source builds all groups, then
// per-group finalisation (HAVING, projection, ORDER BY) reuses the
// interpreter's scalar evaluator — group counts are small, rows are not.
func execGroupedVec(c *vctx, s *SelectStmt, items []SelectItem, src *vecRel) (*Result, error) {
	res := &Result{}
	for i, it := range items {
		res.Columns = append(res.Columns, itemName(it, i))
	}

	aggCalls := collectAggCalls(s, items)
	gbComps := make([]vexpr, len(s.GroupBy))
	for i, ge := range s.GroupBy {
		gbComps[i] = compileExpr(ge, src.cols)
	}
	argComps := make([]vexpr, len(aggCalls))
	for i, f := range aggCalls {
		if !f.Star {
			argComps[i] = compileExpr(f.Args[0], src.cols)
		}
	}

	newGroup := func(first int) *vgroup {
		g := &vgroup{first: first, accs: make([]aggAcc, len(aggCalls))}
		for i, f := range aggCalls {
			g.accs[i].allInt = true
			if f.Distinct {
				g.accs[i].seen = make(map[string]bool)
			}
		}
		return g
	}

	groups := make(map[string]*vgroup)
	var order []*vgroup
	var single *vgroup // the one group when there is no GROUP BY

	batch := &vbatch{vecs: src.vecs}
	gbufs := make([][]Value, len(gbComps))
	for i := range gbufs {
		gbufs[i] = c.getVals()
		defer c.putVals(gbufs[i])
	}
	abufs := make([][]Value, len(argComps))
	for i := range argComps {
		if argComps[i] != nil {
			abufs[i] = c.getVals()
			defer c.putVals(abufs[i])
		}
	}
	sel := c.getSel()
	defer c.putSel(sel)
	var kbuf []byte
	distinctKey := make([]Value, 1)

	for base := 0; base < src.n; base += vecChunk {
		end := min(base+vecChunk, src.n)
		sel = sel[:0]
		for r := base; r < end; r++ {
			sel = append(sel, r)
		}
		for i, comp := range gbComps {
			if err := comp.eval(c, batch, sel, gbufs[i]); err != nil {
				return nil, err
			}
		}
		for i, comp := range argComps {
			if comp == nil {
				continue
			}
			if err := comp.eval(c, batch, sel, abufs[i]); err != nil {
				return nil, err
			}
		}
		for j := 0; j < end-base; j++ {
			var g *vgroup
			if len(gbComps) == 0 {
				if single == nil {
					single = newGroup(base + j)
					order = append(order, single)
				}
				g = single
			} else {
				kbuf = kbuf[:0]
				for i := range gbComps {
					kbuf = appendKeyValue(kbuf, gbufs[i][j])
				}
				var ok bool
				g, ok = groups[string(kbuf)]
				if !ok {
					g = newGroup(base + j)
					groups[string(kbuf)] = g
					order = append(order, g)
				}
			}
			g.rows++
			for ai, f := range aggCalls {
				if f.Star {
					continue
				}
				v := abufs[ai][j]
				if v.Null {
					continue // aggregates skip NULLs
				}
				acc := &g.accs[ai]
				if f.Distinct {
					distinctKey[0] = v
					dk := encodeKey(distinctKey)
					if acc.seen[dk] {
						continue
					}
					acc.seen[dk] = true
				}
				acc.n++
				switch f.Name {
				case "COUNT":
				case "MIN", "MAX":
					if !acc.hasBest {
						acc.best = v
						acc.hasBest = true
					} else if cv := Compare(v, acc.best); (f.Name == "MIN" && cv < 0) || (f.Name == "MAX" && cv > 0) {
						acc.best = v
					}
				case "SUM", "AVG":
					fv, ok := v.AsFloat()
					if !ok {
						return nil, fmt.Errorf("sql: %s over non-numeric values", f.Name)
					}
					acc.fsum += fv
					if v.Kind == TypeInt {
						acc.isum += v.Int
					} else {
						acc.allInt = false
					}
				default:
					return nil, fmt.Errorf("sql: unknown aggregate %s", f.Name)
				}
			}
		}
	}
	// Empty input with no GROUP BY still yields one (empty) group, per SQL.
	if len(s.GroupBy) == 0 && len(order) == 0 {
		order = append(order, newGroup(-1))
	}

	aliasOf := aliasMap(items)
	type sortable struct {
		proj Row
		keys Row
	}
	var tagged []sortable

	for _, g := range order {
		aggs := make(map[string]Value, len(aggCalls))
		for ai, f := range aggCalls {
			var v Value
			acc := &g.accs[ai]
			switch {
			case f.Star:
				v = IntValue(g.rows)
			case f.Name == "COUNT":
				v = IntValue(acc.n)
			case f.Name == "MIN" || f.Name == "MAX":
				if acc.hasBest {
					v = acc.best
				} else {
					v = NullValue()
				}
			case f.Name == "SUM":
				switch {
				case acc.n == 0:
					v = NullValue()
				case acc.allInt:
					v = IntValue(acc.isum)
				default:
					v = FloatValue(acc.fsum)
				}
			case f.Name == "AVG":
				if acc.n == 0 {
					v = NullValue()
				} else {
					v = FloatValue(acc.fsum / float64(acc.n))
				}
			}
			aggs[f.String()] = v
		}
		genv := &evalEnv{cols: src.cols, aggs: aggs}
		if g.first >= 0 {
			row := make(Row, len(src.cols))
			for ci, vec := range src.vecs {
				if vec != nil {
					row[ci] = vec[g.first]
				} else {
					row[ci] = NullValue() // unreferenced: never read by eval
				}
			}
			genv.row = row
		} else {
			genv.row = make(Row, len(src.cols)) // all NULLs
		}
		if s.Having != nil {
			v, err := eval(s.Having, genv)
			if err != nil {
				return nil, err
			}
			if b, ok := v.Truthy(); !ok || !b {
				continue
			}
		}
		proj := make(Row, len(items))
		for i, it := range items {
			v, err := eval(it.Expr, genv)
			if err != nil {
				return nil, err
			}
			proj[i] = v
		}
		if len(s.OrderBy) == 0 {
			res.Rows = append(res.Rows, proj)
			continue
		}
		kr, err := orderKeys(s.OrderBy, genv, aliasOf, proj)
		if err != nil {
			return nil, err
		}
		tagged = append(tagged, sortable{proj: proj, keys: kr})
	}

	if len(s.OrderBy) > 0 {
		sort.SliceStable(tagged, func(i, j int) bool {
			return orderLess(tagged[i].keys, tagged[j].keys, s.OrderBy)
		})
		for _, t := range tagged {
			res.Rows = append(res.Rows, t.proj)
		}
	}
	return res, nil
}
