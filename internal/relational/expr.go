package relational

import (
	"fmt"
	"math"
	"strings"
)

// colBinding names one column visible to an expression: qualifier (table or
// alias, lower-cased) plus column name (lower-cased).
type colBinding struct {
	table string
	name  string
}

// evalEnv is the environment expressions are evaluated in: the visible
// column bindings, the current row, optional select-item aliases, and — in
// the aggregate phase — precomputed aggregate results keyed by the
// aggregate's rendered text.
type evalEnv struct {
	cols    []colBinding
	row     Row
	aliases map[string]int   // alias (lower) -> env column ordinal
	aggs    map[string]Value // e.g. "COUNT(*)" -> value
}

// resolve maps a column reference to its ordinal in the env.
func (env *evalEnv) resolve(c *ColRef) (int, error) {
	tbl := strings.ToLower(c.Table)
	name := strings.ToLower(c.Name)
	if tbl == "" {
		if env.aliases != nil {
			if ord, ok := env.aliases[name]; ok {
				return ord, nil
			}
		}
		found := -1
		for i, b := range env.cols {
			if b.name == name {
				if found >= 0 {
					return 0, fmt.Errorf("sql: ambiguous column %s", c.Name)
				}
				found = i
			}
		}
		if found < 0 {
			return 0, fmt.Errorf("sql: unknown column %s", c.Name)
		}
		return found, nil
	}
	for i, b := range env.cols {
		if b.table == tbl && b.name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sql: unknown column %s.%s", c.Table, c.Name)
}

// eval evaluates an expression against the environment.
func eval(e Expr, env *evalEnv) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColRef:
		ord, err := env.resolve(x)
		if err != nil {
			return Value{}, err
		}
		return env.row[ord], nil
	case *Unary:
		return evalUnary(x, env)
	case *Binary:
		return evalBinary(x, env)
	case *IsNull:
		v, err := eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		if x.Negate {
			return BoolValue(!v.Null), nil
		}
		return BoolValue(v.Null), nil
	case *InList:
		return evalIn(x, env)
	case *Between:
		return evalBetween(x, env)
	case *Subquery:
		return Value{}, fmt.Errorf("sql: unresolved subquery (internal error)")
	case *FuncCall:
		if x.IsAggregate() {
			if env.aggs != nil {
				if v, ok := env.aggs[x.String()]; ok {
					return v, nil
				}
			}
			return Value{}, fmt.Errorf("sql: aggregate %s used outside aggregation context", x.Name)
		}
		return evalScalarFunc(x, env)
	}
	return Value{}, fmt.Errorf("sql: cannot evaluate %T", e)
}

func evalUnary(x *Unary, env *evalEnv) (Value, error) {
	v, err := eval(x.X, env)
	if err != nil {
		return Value{}, err
	}
	return applyUnary(x.Op, v)
}

// applyUnary applies a unary operator to an evaluated operand (shared by the
// row interpreter and the batched executor).
func applyUnary(op string, v Value) (Value, error) {
	switch op {
	case "-":
		if v.Null {
			return NullValue(), nil
		}
		switch v.Kind {
		case TypeInt:
			return IntValue(-v.Int), nil
		case TypeFloat:
			return FloatValue(-v.Float), nil
		}
		return Value{}, fmt.Errorf("sql: cannot negate %s value", v.Kind)
	case "NOT":
		if v.Null {
			return NullValue(), nil
		}
		b, ok := v.Truthy()
		if !ok {
			return Value{}, fmt.Errorf("sql: NOT applied to %s value", v.Kind)
		}
		return BoolValue(!b), nil
	}
	return Value{}, fmt.Errorf("sql: unknown unary operator %s", op)
}

func evalBinary(x *Binary, env *evalEnv) (Value, error) {
	// AND/OR implement three-valued logic with short-circuiting.
	if x.Op == "AND" || x.Op == "OR" {
		l, err := eval(x.L, env)
		if err != nil {
			return Value{}, err
		}
		lb, lok := l.Truthy()
		if x.Op == "AND" {
			if lok && !lb {
				return BoolValue(false), nil
			}
			r, err := eval(x.R, env)
			if err != nil {
				return Value{}, err
			}
			rb, rok := r.Truthy()
			switch {
			case rok && !rb:
				return BoolValue(false), nil
			case lok && rok:
				return BoolValue(lb && rb), nil
			default:
				return NullValue(), nil
			}
		}
		if lok && lb {
			return BoolValue(true), nil
		}
		r, err := eval(x.R, env)
		if err != nil {
			return Value{}, err
		}
		rb, rok := r.Truthy()
		switch {
		case rok && rb:
			return BoolValue(true), nil
		case lok && rok:
			return BoolValue(lb || rb), nil
		default:
			return NullValue(), nil
		}
	}

	l, err := eval(x.L, env)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(x.R, env)
	if err != nil {
		return Value{}, err
	}
	return applyBinary(x.Op, l, r)
}

// applyBinary applies a non-logical binary operator to evaluated operands.
// Shared by the row interpreter and the batched executor so the two engines
// cannot drift on operator semantics.
func applyBinary(op string, l, r Value) (Value, error) {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.Null || r.Null {
			return NullValue(), nil
		}
		c := Compare(l, r)
		switch op {
		case "=":
			return BoolValue(c == 0), nil
		case "<>":
			return BoolValue(c != 0), nil
		case "<":
			return BoolValue(c < 0), nil
		case "<=":
			return BoolValue(c <= 0), nil
		case ">":
			return BoolValue(c > 0), nil
		default:
			return BoolValue(c >= 0), nil
		}
	case "LIKE":
		if l.Null || r.Null {
			return NullValue(), nil
		}
		return BoolValue(matchLike(l.String(), r.String())), nil
	case "||":
		if l.Null || r.Null {
			return NullValue(), nil
		}
		return TextValue(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		return evalArith(op, l, r)
	}
	return Value{}, fmt.Errorf("sql: unknown operator %s", op)
}

func evalArith(op string, l, r Value) (Value, error) {
	if l.Null || r.Null {
		return NullValue(), nil
	}
	if l.Kind == TypeInt && r.Kind == TypeInt {
		switch op {
		case "+":
			return IntValue(l.Int + r.Int), nil
		case "-":
			return IntValue(l.Int - r.Int), nil
		case "*":
			return IntValue(l.Int * r.Int), nil
		case "/":
			if r.Int == 0 {
				return Value{}, fmt.Errorf("sql: division by zero")
			}
			return IntValue(l.Int / r.Int), nil
		case "%":
			if r.Int == 0 {
				return Value{}, fmt.Errorf("sql: division by zero")
			}
			return IntValue(l.Int % r.Int), nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return Value{}, fmt.Errorf("sql: arithmetic on non-numeric values (%s %s %s)", l.Kind, op, r.Kind)
	}
	switch op {
	case "+":
		return FloatValue(lf + rf), nil
	case "-":
		return FloatValue(lf - rf), nil
	case "*":
		return FloatValue(lf * rf), nil
	case "/":
		if rf == 0 {
			return Value{}, fmt.Errorf("sql: division by zero")
		}
		return FloatValue(lf / rf), nil
	case "%":
		if rf == 0 {
			return Value{}, fmt.Errorf("sql: division by zero")
		}
		return FloatValue(math.Mod(lf, rf)), nil
	}
	return Value{}, fmt.Errorf("sql: unknown arithmetic operator %s", op)
}

func evalIn(x *InList, env *evalEnv) (Value, error) {
	v, err := eval(x.X, env)
	if err != nil {
		return Value{}, err
	}
	if v.Null {
		return NullValue(), nil
	}
	sawNull := false
	for _, item := range x.List {
		iv, err := eval(item, env)
		if err != nil {
			return Value{}, err
		}
		if iv.Null {
			sawNull = true
			continue
		}
		if Compare(v, iv) == 0 {
			return BoolValue(!x.Negate), nil
		}
	}
	if sawNull {
		return NullValue(), nil
	}
	return BoolValue(x.Negate), nil
}

func evalBetween(x *Between, env *evalEnv) (Value, error) {
	v, err := eval(x.X, env)
	if err != nil {
		return Value{}, err
	}
	lo, err := eval(x.Lo, env)
	if err != nil {
		return Value{}, err
	}
	hi, err := eval(x.Hi, env)
	if err != nil {
		return Value{}, err
	}
	if v.Null || lo.Null || hi.Null {
		return NullValue(), nil
	}
	in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
	if x.Negate {
		in = !in
	}
	return BoolValue(in), nil
}

func evalScalarFunc(f *FuncCall, env *evalEnv) (Value, error) {
	args := make([]Value, len(f.Args))
	for i, a := range f.Args {
		v, err := eval(a, env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return applyScalarFunc(f, args)
}

// applyScalarFunc applies a scalar function to evaluated arguments (shared by
// the row interpreter and the batched executor).
func applyScalarFunc(f *FuncCall, args []Value) (Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sql: %s takes %d argument(s), got %d", f.Name, n, len(args))
		}
		return nil
	}
	switch f.Name {
	case "UPPER":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].Null {
			return NullValue(), nil
		}
		return TextValue(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].Null {
			return NullValue(), nil
		}
		return TextValue(strings.ToLower(args[0].String())), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].Null {
			return NullValue(), nil
		}
		return IntValue(int64(len(args[0].String()))), nil
	case "TRIM":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].Null {
			return NullValue(), nil
		}
		return TextValue(strings.TrimSpace(args[0].String())), nil
	case "ABS":
		if err := need(1); err != nil {
			return Value{}, err
		}
		v := args[0]
		if v.Null {
			return NullValue(), nil
		}
		switch v.Kind {
		case TypeInt:
			if v.Int < 0 {
				return IntValue(-v.Int), nil
			}
			return v, nil
		case TypeFloat:
			return FloatValue(math.Abs(v.Float)), nil
		}
		return Value{}, fmt.Errorf("sql: ABS of non-numeric value")
	case "ROUND":
		if err := need(1); err != nil {
			return Value{}, err
		}
		v := args[0]
		if v.Null {
			return NullValue(), nil
		}
		fv, ok := v.AsFloat()
		if !ok {
			return Value{}, fmt.Errorf("sql: ROUND of non-numeric value")
		}
		return FloatValue(math.Round(fv)), nil
	case "COALESCE":
		for _, v := range args {
			if !v.Null {
				return v, nil
			}
		}
		return NullValue(), nil
	case "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return Value{}, fmt.Errorf("sql: SUBSTR takes 2 or 3 arguments")
		}
		if args[0].Null || args[1].Null {
			return NullValue(), nil
		}
		s := args[0].String()
		start := int(args[1].Int) - 1 // SQL SUBSTR is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return TextValue(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			if args[2].Null {
				return NullValue(), nil
			}
			if n := int(args[2].Int); start+n < end {
				end = start + n
			}
		}
		return TextValue(s[start:end]), nil
	}
	return Value{}, fmt.Errorf("sql: unknown function %s", f.Name)
}

// matchLike implements SQL LIKE with % and _ wildcards (case-sensitive).
func matchLike(s, pattern string) bool {
	return likeMatch(s, pattern)
}

// MatchLike exposes the engine's LIKE matcher so the federated planner can
// compensate at the coordinator with exactly the engine's semantics when a
// LIKE could not be pushed into a fragment.
func MatchLike(s, pattern string) bool { return likeMatch(s, pattern) }

func likeMatch(s, p string) bool {
	// Iterative two-pointer matcher with backtracking on '%'.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
