package relational

import "testing"

// FuzzSQLParse feeds arbitrary SQL text to the statement and script parsers:
// any input must produce statements or an error, never a panic, and a script
// parse must never half-succeed (statements alongside an error).
func FuzzSQLParse(f *testing.F) {
	seeds := []string{
		"CREATE TABLE Patient (Id INT PRIMARY KEY, Name VARCHAR(64), Gender CHAR(1))",
		"CREATE INDEX idx_gender ON Patient (Gender)",
		"INSERT INTO Patient VALUES (1, 'Alice Howe', 'F')",
		"INSERT INTO Patient (Id, Name) VALUES (2, 'Bob Tran')",
		"SELECT Name FROM Patient WHERE Gender = 'F' ORDER BY Name",
		"SELECT COUNT(*) FROM Patient GROUP BY Gender HAVING COUNT(*) > 1",
		"SELECT p.Name, h.Note FROM Patient p JOIN History h ON p.Id = h.PatientId",
		"UPDATE Patient SET Name = 'X' WHERE Id = 1",
		"DELETE FROM Patient WHERE Address IS NULL",
		"SELECT * FROM Patient WHERE Name LIKE 'A%' AND Id BETWEEN 1 AND 9",
		"BEGIN",
		"COMMIT",
		"ROLLBACK",
		`CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);
		INSERT INTO r VALUES ('a', 0);`,
		// Malformed shapes the parser must reject gracefully.
		"SELECT FROM",
		"INSERT Patient",
		"CREATE TABLE (",
		"SELECT 'unterminated",
		"",
		";;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		if stmt, err := ParseSQL(src); err != nil && stmt != nil {
			t.Fatalf("ParseSQL(%q) returned both statement and error %v", src, err)
		}
		stmts, err := ParseSQLScript(src)
		if err != nil && len(stmts) > 0 {
			t.Fatalf("ParseSQLScript(%q) returned %d statements and error %v", src, len(stmts), err)
		}
	})
}
