package relational

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzSQLParse feeds arbitrary SQL text to the statement and script parsers:
// any input must produce statements or an error, never a panic, and a script
// parse must never half-succeed (statements alongside an error). Successful
// parses are then round-tripped through the plan cache — the second fetch
// must be a hit returning an identical statement list — and executed on both
// the batched and the row-at-a-time engine, which must agree on error
// presence and, when both succeed, on the result.
func FuzzSQLParse(f *testing.F) {
	seeds := []string{
		"CREATE TABLE Patient (Id INT PRIMARY KEY, Name VARCHAR(64), Gender CHAR(1))",
		"CREATE INDEX idx_gender ON Patient (Gender)",
		"INSERT INTO Patient VALUES (1, 'Alice Howe', 'F')",
		"INSERT INTO Patient (Id, Name) VALUES (2, 'Bob Tran')",
		"SELECT Name FROM Patient WHERE Gender = 'F' ORDER BY Name",
		"SELECT COUNT(*) FROM Patient GROUP BY Gender HAVING COUNT(*) > 1",
		"SELECT p.Name, h.Note FROM Patient p JOIN History h ON p.Id = h.PatientId",
		"UPDATE Patient SET Name = 'X' WHERE Id = 1",
		"DELETE FROM Patient WHERE Address IS NULL",
		"SELECT * FROM Patient WHERE Name LIKE 'A%' AND Id BETWEEN 1 AND 9",
		"BEGIN",
		"COMMIT",
		"ROLLBACK",
		`CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);
		INSERT INTO r VALUES ('a', 0);`,
		// Plan-cache round trips that cross a schema change.
		"SELECT a, b FROM f; CREATE TABLE g (x INT); SELECT a, b FROM f",
		"SELECT v FROM f WHERE a IN (1, 2) UNION SELECT v FROM f",
		"SELECT a, SUM(b) FROM f GROUP BY a ORDER BY 2 DESC LIMIT 3",
		"SELECT x.a, y.a FROM f x LEFT JOIN f y ON x.a = y.b WHERE x.b / 2 > 0",
		// Malformed shapes the parser must reject gracefully.
		"SELECT FROM",
		"INSERT Patient",
		"CREATE TABLE (",
		"SELECT 'unterminated",
		"",
		";;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		if stmt, err := ParseSQL(src); err != nil && stmt != nil {
			t.Fatalf("ParseSQL(%q) returned both statement and error %v", src, err)
		}
		stmts, err := ParseSQLScript(src)
		if err != nil && len(stmts) > 0 {
			t.Fatalf("ParseSQLScript(%q) returned %d statements and error %v", src, len(stmts), err)
		}

		// Plan-cache round trip: parse through the cache, then re-fetch. The
		// second call must be a hit (no DDL ran in between) and return a
		// deeply identical statement list.
		vec := NewDatabase("fuzz-vec", DialectOracle)
		s1, err1 := vec.parseCached(src)
		if (err1 != nil) != (err != nil) {
			t.Fatalf("parseCached(%q) error %v, ParseSQLScript error %v", src, err1, err)
		}
		if err1 != nil {
			return
		}
		pre := vec.PlanCacheStats()
		s2, err2 := vec.parseCached(src)
		if err2 != nil {
			t.Fatalf("re-fetch of cached %q failed: %v", src, err2)
		}
		post := vec.PlanCacheStats()
		if post.Hits != pre.Hits+1 {
			t.Fatalf("re-fetch of %q was not a cache hit: pre %+v post %+v", src, pre, post)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("cache returned a different statement list for %q", src)
		}

		// Differential execution: the same script on the batched and the
		// row-at-a-time engine, over a tiny shared schema, must agree on
		// error presence and on the final result. Gate out inputs whose
		// cartesian cost could explode (many FROM sources / commas / rows):
		// the fuzzer would otherwise discover multi-way cross joins that
		// trip the per-input hang timeout rather than a real bug.
		up := strings.ToUpper(src)
		cost := strings.Count(up, "FROM") + strings.Count(up, "JOIN") + strings.Count(up, ",")
		if len(src) > 300 || cost > 4 {
			return
		}
		row := NewDatabase("fuzz-row", DialectOracle)
		row.rowExec = true
		const schema = `
CREATE TABLE f (a INT, b INT, v VARCHAR(8));
INSERT INTO f VALUES (1, 2, 'x');
INSERT INTO f VALUES (2, NULL, 'y');
INSERT INTO f VALUES (3, 2, NULL);
`
		for _, db := range []*Database{vec, row} {
			if _, err := db.ExecScript(schema); err != nil {
				t.Fatal(err)
			}
		}
		rv, errV := vec.ExecScript(src)
		rr, errR := row.ExecScript(src)
		if (errV != nil) != (errR != nil) {
			t.Fatalf("engines disagree on error for %q:\n  vec: %v\n  row: %v", src, errV, errR)
		}
		if errV == nil && !reflect.DeepEqual(rv, rr) {
			t.Fatalf("engines disagree on result for %q:\nvec: %+v\nrow: %+v", src, rv, rr)
		}
	})
}
