package relational

import (
	"fmt"
	"strings"
)

// tokKind enumerates SQL token kinds.
type tokKind byte

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokPunct // ( ) , . ; * = < > <= >= <> != + - / %
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// sqlKeywords is the reserved-word set recognised by the lexer.
var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "DROP": true,
	"INDEX": true, "ON": true, "PRIMARY": true, "KEY": true, "NULL": true,
	"DEFAULT": true, "ORDER": true, "BY": true, "GROUP": true, "HAVING": true,
	"LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "CROSS": true,
	"LIKE": true, "IN": true, "BETWEEN": true, "IS": true, "DISTINCT": true,
	"TRUE": true, "FALSE": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "INTEGER": true, "INT": true, "FLOAT": true,
	"REAL": true, "DOUBLE": true, "VARCHAR": true, "CHAR": true, "TEXT": true,
	"BOOLEAN": true, "DATE": true, "UNIQUE": true, "IF": true, "EXISTS": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"TRANSACTION": true, "WORK": true, "UNION": true, "ALL": true,
	"EXPLAIN": true,
}

// lexSQL tokenises a SQL text.
func lexSQL(src string) ([]token, error) {
	return lexSQLInto(src, nil)
}

// lexSQLInto tokenises into a caller-provided buffer (reset to length zero),
// letting pooled parsers reuse their token arrays across statements.
func lexSQLInto(src string, toks []token) ([]token, error) {
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // -- comment
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated comment at offset %d", i)
			}
			i += 2 + end + 2
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n {
				d := src[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				break
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case isSQLIdentStart(c):
			start := i
			for i < n && isSQLIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if sqlKeywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case c == '"': // quoted identifier
			start := i
			i++
			j := strings.IndexByte(src[i:], '"')
			if j < 0 {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
			}
			toks = append(toks, token{tokIdent, src[i : i+j], start})
			i += j + 1
		default:
			start := i
			// multi-char operators
			if i+1 < n {
				two := src[i : i+2]
				switch two {
				case "<=", ">=", "<>", "!=", "||":
					toks = append(toks, token{tokPunct, two, start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '.', ';', '*', '=', '<', '>', '+', '-', '/', '%':
				toks = append(toks, token{tokPunct, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isSQLIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isSQLIdentPart(c byte) bool {
	return isSQLIdentStart(c) || (c >= '0' && c <= '9')
}
