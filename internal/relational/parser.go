package relational

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ParseSQL parses a single SQL statement (a trailing semicolon is allowed).
func ParseSQL(src string) (Statement, error) {
	stmts, err := ParseSQLScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// sqlParserPool recycles parser state (chiefly the token slice) across
// calls; parsing a statement then costs no token-array allocations once the
// pool is warm. Returned ASTs hold only strings, never tokens, so reuse
// cannot leak state between queries.
var (
	sqlParserPool = sync.Pool{New: func() any {
		sqlParserNews.Add(1)
		return &sqlParser{}
	}}
	sqlParserGets atomic.Uint64
	sqlParserNews atomic.Uint64
)

// ParserPoolStats reports pooled-parser reuse: a hit is a Get served from
// the pool, a miss is a Get that had to allocate fresh state.
type ParserPoolStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// SQLParserPoolStats snapshots the SQL parser pool counters.
func SQLParserPoolStats() ParserPoolStats {
	gets, news := sqlParserGets.Load(), sqlParserNews.Load()
	return ParserPoolStats{Hits: gets - news, Misses: news}
}

// ParseSQLScript parses a semicolon-separated sequence of statements.
func ParseSQLScript(src string) ([]Statement, error) {
	sqlParserGets.Add(1)
	p := sqlParserPool.Get().(*sqlParser)
	defer func() {
		clear(p.toks) // drop string references before pooling
		p.toks = p.toks[:0]
		p.pos = 0
		sqlParserPool.Put(p)
	}()
	toks, err := lexSQLInto(src, p.toks[:0])
	p.toks = toks
	if err != nil {
		return nil, err
	}
	p.pos = 0
	var stmts []Statement
	for {
		for p.peek().text == ";" {
			p.next()
		}
		if p.peek().kind == tokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if t := p.peek(); t.kind != tokEOF && t.text != ";" {
			return nil, fmt.Errorf("sql: unexpected %s after statement", t)
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sql: empty input")
	}
	return stmts, nil
}

type sqlParser struct {
	toks []token
	pos  int
}

func (p *sqlParser) peek() token { return p.toks[p.pos] }

func (p *sqlParser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *sqlParser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// accept consumes the next token if it matches text (keywords upper-cased).
func (p *sqlParser) accept(text string) bool {
	if p.peek().text == text {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("sql: expected %s, got %s (offset %d)", text, t, t.pos)
	}
	return nil
}

func (p *sqlParser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %s (offset %d)", t, t.pos)
	}
	return t.text, nil
}

func (p *sqlParser) parseStatement() (Statement, error) {
	switch p.peek().text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "BEGIN":
		p.next()
		p.accept("TRANSACTION")
		p.accept("WORK")
		return &BeginStmt{}, nil
	case "COMMIT":
		p.next()
		p.accept("TRANSACTION")
		p.accept("WORK")
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.next()
		p.accept("TRANSACTION")
		p.accept("WORK")
		return &RollbackStmt{}, nil
	case "EXPLAIN":
		p.next()
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: q}, nil
	}
	t := p.peek()
	return nil, fmt.Errorf("sql: unexpected %s at start of statement (offset %d)", t, t.pos)
}

// parseSelect parses a full SELECT: a UNION chain of select cores followed
// by ORDER BY / LIMIT / OFFSET, which apply to the combined result.
func (p *sqlParser) parseSelect() (*SelectStmt, error) {
	head, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	cur := head
	for p.accept("UNION") {
		all := p.accept("ALL")
		arm, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		cur.Union = arm
		cur.UnionAll = all
		cur = arm
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			head.OrderBy = append(head.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("LIMIT") {
		n, err := p.parseNonNegInt()
		if err != nil {
			return nil, err
		}
		head.Limit = n
		if p.accept("OFFSET") {
			m, err := p.parseNonNegInt()
			if err != nil {
				return nil, err
			}
			head.Offset = m
		}
	}
	return head, nil
}

// parseSelectCore parses one SELECT arm up to and including HAVING.
func (p *sqlParser) parseSelectCore() (*SelectStmt, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept("DISTINCT")

	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(",") {
			break
		}
	}

	if p.accept("FROM") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, tr)
		for {
			switch {
			case p.accept(","):
				tr, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				s.From = append(s.From, tr)
			case p.peek().text == "JOIN" || p.peek().text == "INNER" ||
				p.peek().text == "LEFT" || p.peek().text == "CROSS":
				jc, err := p.parseJoin()
				if err != nil {
					return nil, err
				}
				s.Joins = append(s.Joins, jc)
			default:
				goto fromDone
			}
		}
	}
fromDone:

	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	return s, nil
}

func (p *sqlParser) parseNonNegInt() (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sql: expected number, got %s (offset %d)", t, t.pos)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("sql: expected non-negative integer, got %s", t.text)
	}
	return n, nil
}

func (p *sqlParser) parseSelectItem() (SelectItem, error) {
	if p.peek().text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if p.peek().kind == tokIdent && p.peek2().text == "." {
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].text == "*" {
			tbl := p.next().text
			p.next() // .
			p.next() // *
			return SelectItem{Star: true, Table: tbl}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *sqlParser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	if p.accept("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.peek().kind == tokIdent {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *sqlParser) parseJoin() (JoinClause, error) {
	kind := "INNER"
	switch {
	case p.accept("INNER"):
	case p.accept("LEFT"):
		kind = "LEFT"
		p.accept("OUTER")
	case p.accept("CROSS"):
		kind = "CROSS"
	}
	if err := p.expect("JOIN"); err != nil {
		return JoinClause{}, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return JoinClause{}, err
	}
	jc := JoinClause{Kind: kind, Table: tr}
	if kind != "CROSS" {
		if err := p.expect("ON"); err != nil {
			return JoinClause{}, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return JoinClause{}, err
		}
		jc.On = on
	}
	return jc, nil
}

func (p *sqlParser) parseInsert() (*InsertStmt, error) {
	if err := p.expect("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.peek().text == "(" {
		p.next()
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.accept("VALUES"):
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.accept(",") {
				break
			}
		}
	case p.peek().text == "SELECT":
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
	default:
		return nil, fmt.Errorf("sql: expected VALUES or SELECT in INSERT, got %s", p.peek())
	}
	return ins, nil
}

func (p *sqlParser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expect("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, SetClause{Column: col, Value: e})
		if !p.accept(",") {
			break
		}
	}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	return u, nil
}

func (p *sqlParser) parseDelete() (*DeleteStmt, error) {
	if err := p.expect("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: table}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

func (p *sqlParser) parseCreate() (Statement, error) {
	if err := p.expect("CREATE"); err != nil {
		return nil, err
	}
	unique := p.accept("UNIQUE")
	switch {
	case p.accept("TABLE"):
		if unique {
			return nil, fmt.Errorf("sql: UNIQUE not valid on CREATE TABLE")
		}
		return p.parseCreateTable()
	case p.accept("INDEX"):
		return p.parseCreateIndex(unique)
	}
	return nil, fmt.Errorf("sql: expected TABLE or INDEX after CREATE, got %s", p.peek())
}

func (p *sqlParser) parseCreateTable() (*CreateTableStmt, error) {
	st := &CreateTableStmt{}
	if p.accept("IF") {
		if err := p.expect("NOT"); err != nil {
			return nil, err
		}
		if err := p.expect("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Schema.Name = name
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		if p.accept("PRIMARY") {
			if err := p.expect("KEY"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ord := st.Schema.ColIndex(col)
				if ord < 0 {
					return nil, fmt.Errorf("sql: PRIMARY KEY names unknown column %s", col)
				}
				st.Schema.PrimaryKey = append(st.Schema.PrimaryKey, ord)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef(&st.Schema)
			if err != nil {
				return nil, err
			}
			st.Schema.Columns = append(st.Schema.Columns, col)
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := st.Schema.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *sqlParser) parseColumnDef(sc *Schema) (Column, error) {
	name, err := p.expectIdent()
	if err != nil {
		return Column{}, err
	}
	col := Column{Name: name}
	t := p.next()
	switch t.text {
	case "INT", "INTEGER":
		col.Type = TypeInt
	case "FLOAT", "REAL", "DOUBLE":
		col.Type = TypeFloat
	case "TEXT":
		col.Type = TypeText
	case "BOOLEAN":
		col.Type = TypeBool
	case "DATE":
		col.Type = TypeDate
	case "VARCHAR", "CHAR":
		col.Type = TypeText
		if p.accept("(") {
			n, err := p.parseNonNegInt()
			if err != nil {
				return Column{}, err
			}
			col.Size = n
			if err := p.expect(")"); err != nil {
				return Column{}, err
			}
		}
	default:
		return Column{}, fmt.Errorf("sql: unknown column type %s (offset %d)", t, t.pos)
	}
	for {
		switch {
		case p.accept("NOT"):
			if err := p.expect("NULL"); err != nil {
				return Column{}, err
			}
			col.NotNull = true
		case p.accept("PRIMARY"):
			if err := p.expect("KEY"); err != nil {
				return Column{}, err
			}
			sc.PrimaryKey = append(sc.PrimaryKey, len(sc.Columns))
			col.NotNull = true
		case p.accept("NULL"):
			// explicit nullable; no-op
		default:
			return col, nil
		}
	}
}

func (p *sqlParser) parseCreateIndex(unique bool) (*CreateIndexStmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Column: col, Unique: unique}, nil
}

func (p *sqlParser) parseDrop() (Statement, error) {
	if err := p.expect("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.accept("TABLE"):
		st := &DropTableStmt{}
		if p.accept("IF") {
			if err := p.expect("EXISTS"); err != nil {
				return nil, err
			}
			st.IfExists = true
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Table = name
		return st, nil
	case p.accept("INDEX"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name}, nil
	}
	return nil, fmt.Errorf("sql: expected TABLE or INDEX after DROP, got %s", p.peek())
}

// ---- Expression parsing (precedence climbing) ----

func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "AND" {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.accept("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.text {
		case "=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
		case "<>", "!=":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "<>", L: l, R: r}
		case "LIKE":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "LIKE", L: l, R: r}
		case "IS":
			p.next()
			negate := p.accept("NOT")
			if err := p.expect("NULL"); err != nil {
				return nil, err
			}
			l = &IsNull{X: l, Negate: negate}
		case "NOT":
			// NOT LIKE / NOT IN / NOT BETWEEN
			if nxt := p.peek2().text; nxt == "LIKE" || nxt == "IN" || nxt == "BETWEEN" {
				p.next() // NOT
				switch p.next().text {
				case "LIKE":
					r, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					l = &Unary{Op: "NOT", X: &Binary{Op: "LIKE", L: l, R: r}}
				case "IN":
					in, err := p.parseInTail(l, true)
					if err != nil {
						return nil, err
					}
					l = in
				case "BETWEEN":
					b, err := p.parseBetweenTail(l, true)
					if err != nil {
						return nil, err
					}
					l = b
				}
				continue
			}
			return l, nil
		case "IN":
			p.next()
			in, err := p.parseInTail(l, false)
			if err != nil {
				return nil, err
			}
			l = in
		case "BETWEEN":
			p.next()
			b, err := p.parseBetweenTail(l, false)
			if err != nil {
				return nil, err
			}
			l = b
		default:
			return l, nil
		}
	}
}

func (p *sqlParser) parseInTail(l Expr, negate bool) (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if p.peek().text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &Subquery{X: l, Select: sub, Negate: negate}, nil
	}
	in := &InList{X: l, Negate: negate}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *sqlParser) parseBetweenTail(l Expr, negate bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Between{X: l, Lo: lo, Hi: hi, Negate: negate}, nil
}

func (p *sqlParser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.text == "+" || t.text == "-" || t.text == "||" {
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.text == "*" || t.text == "/" || t.text == "%" {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) parseUnary() (Expr, error) {
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	p.accept("+") // unary plus is a no-op
	return p.parsePrimary()
}

// scalarFuncs is the set of recognised scalar function names.
var scalarFuncs = map[string]bool{
	"UPPER": true, "LOWER": true, "LENGTH": true, "ABS": true,
	"COALESCE": true, "SUBSTR": true, "TRIM": true, "ROUND": true,
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %s", t.text)
			}
			return &Literal{Val: FloatValue(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %s", t.text)
		}
		return &Literal{Val: IntValue(n)}, nil
	case tokString:
		p.next()
		return &Literal{Val: TextValue(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: NullValue()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: BoolValue(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: BoolValue(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			return p.parseFuncTail(t.text)
		case "EXISTS":
			p.next()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Subquery{Select: sub, Exists: true}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s in expression (offset %d)", t.text, t.pos)
	case tokIdent:
		name := p.next().text
		if p.peek().text == "(" {
			up := strings.ToUpper(name)
			if !scalarFuncs[up] && !aggregateFuncs[up] {
				return nil, fmt.Errorf("sql: unknown function %s (offset %d)", name, t.pos)
			}
			return p.parseFuncTail(up)
		}
		if p.accept(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression (offset %d)", t, t.pos)
}

func (p *sqlParser) parseFuncTail(name string) (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: strings.ToUpper(name)}
	if p.peek().text == "*" {
		p.next()
		f.Star = true
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if f.Name != "COUNT" {
			return nil, fmt.Errorf("sql: %s(*) is only valid for COUNT", f.Name)
		}
		return f, nil
	}
	f.Distinct = p.accept("DISTINCT")
	if p.peek().text != ")" {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if f.IsAggregate() && len(f.Args) != 1 {
		return nil, fmt.Errorf("sql: aggregate %s takes exactly one argument", f.Name)
	}
	return f, nil
}
