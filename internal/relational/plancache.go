package relational

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// defaultPlanCacheCap bounds the number of cached statement lists per
// database. Parameterised workloads that format literals into the text (the
// common case in this codebase) churn the tail of the LRU without evicting
// hot templates.
const defaultPlanCacheCap = 256

// planCache memoises parsed statement lists keyed by exact query text. Each
// entry carries the schema version it was parsed under; a lookup against a
// newer version drops the entry, so every DDL statement invalidates all
// earlier plans (the version check is the revalidation, the bump is the
// broadcast). Cached statements are shared across goroutines: execution
// never mutates a parsed AST (subquery rewriting copies), which is what
// makes the cache sound.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	byKey map[string]*list.Element // query text -> entry

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	evictions     atomic.Uint64
}

type planCacheEntry struct {
	key     string
	stmts   []Statement
	version uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// get returns the statements cached for key when they were parsed at schema
// version v. A version mismatch counts as both an invalidation and a miss.
func (c *planCache) get(key string, v uint64) ([]Statement, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*planCacheEntry)
	if e.version != v {
		c.ll.Remove(el)
		delete(c.byKey, key)
		c.mu.Unlock()
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.mu.Unlock()
	c.hits.Add(1)
	return e.stmts, true
}

// put stores statements parsed at schema version v, evicting the least
// recently used entries beyond capacity.
func (c *planCache) put(key string, stmts []Statement, v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*planCacheEntry)
		e.stmts, e.version = stmts, v
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&planCacheEntry{key: key, stmts: stmts, version: v})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*planCacheEntry).key)
		c.evictions.Add(1)
	}
}

// PlanCacheStats is a point-in-time snapshot of plan-cache effectiveness,
// published per node at /debug/metrics.
type PlanCacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
	Entries       int    `json:"entries"`
	SchemaVersion uint64 `json:"schema_version"`
}

// PlanCacheStats snapshots the database's plan cache counters.
func (db *Database) PlanCacheStats() PlanCacheStats {
	c := db.plans
	c.mu.Lock()
	entries := c.ll.Len()
	c.mu.Unlock()
	return PlanCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       entries,
		SchemaVersion: db.schemaVer.Load(),
	}
}
