package relational

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func newCacheDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase("pc", DialectOracle)
	script := `
CREATE TABLE t (id INT PRIMARY KEY, v INT);
INSERT INTO t VALUES (1, 10);
INSERT INTO t VALUES (2, 20);
INSERT INTO t VALUES (3, 20);
`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestPlanCacheHitOnRepeat: re-issuing the same query text is served from
// the cache, and the cached plan produces the same result.
func TestPlanCacheHitOnRepeat(t *testing.T) {
	db := newCacheDB(t)
	base := db.PlanCacheStats()
	const q = "SELECT v FROM t WHERE id = 2"
	r1, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	after1 := db.PlanCacheStats()
	if after1.Misses != base.Misses+1 || after1.Hits != base.Hits {
		t.Fatalf("first query: want one miss, got %+v (base %+v)", after1, base)
	}
	r2, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	after2 := db.PlanCacheStats()
	if after2.Hits != after1.Hits+1 || after2.Misses != after1.Misses {
		t.Fatalf("second query: want one hit, got %+v", after2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("cached plan changed the result:\n%s\nvs\n%s", r1.Format(), r2.Format())
	}
	// The parsed statements really are shared, not re-parsed.
	s1, err := db.parseCached(q)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.parseCached(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 1 || !reflect.DeepEqual(s1, s2) {
		t.Fatal("parseCached returned different statement lists for the same text")
	}
}

// TestPlanCacheDDLInvalidation: every DDL statement bumps the schema version,
// so plans cached before it re-parse (and see the new schema) on next use.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	db := newCacheDB(t)
	const q = "SELECT * FROM t WHERE v = 20"
	r1, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Columns) != 2 {
		t.Fatalf("want 2 columns before DDL, got %v", r1.Columns)
	}
	v0 := db.SchemaVersion()

	for i, ddl := range []string{
		"CREATE INDEX iv ON t (v)",
		"DROP INDEX iv",
		"CREATE TABLE u (a INT)",
		"DROP TABLE u",
	} {
		if _, err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
		if got := db.SchemaVersion(); got != v0+uint64(i)+1 {
			t.Fatalf("after %q: schema version %d, want %d", ddl, got, v0+uint64(i)+1)
		}
	}

	pre := db.PlanCacheStats()
	r2, err := db.Query(q) // cached under the old version: must invalidate
	if err != nil {
		t.Fatal(err)
	}
	post := db.PlanCacheStats()
	if post.Invalidations != pre.Invalidations+1 {
		t.Fatalf("stale plan not invalidated: pre %+v post %+v", pre, post)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("results diverged across invalidation:\n%s\nvs\n%s", r1.Format(), r2.Format())
	}

	// A schema change the plan's shape depends on: SELECT * must widen after
	// an ALTER-equivalent (re-create with an extra column).
	if _, err := db.Exec("CREATE TABLE w (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO w VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	const qw = "SELECT * FROM w"
	rw, err := db.Query(qw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Columns) != 1 {
		t.Fatalf("want 1 column, got %v", rw.Columns)
	}
	if _, err := db.Exec("DROP TABLE w"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE w (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO w VALUES (1, 2)"); err != nil {
		t.Fatal(err)
	}
	rw2, err := db.Query(qw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw2.Columns) != 2 {
		t.Fatalf("stale plan survived DDL: SELECT * returned %v after table widened", rw2.Columns)
	}
}

// TestPlanCacheParseErrorsNotCached: a syntax error is returned every time
// and never populates the cache.
func TestPlanCacheParseErrorsNotCached(t *testing.T) {
	db := newCacheDB(t)
	pre := db.PlanCacheStats()
	for i := 0; i < 3; i++ {
		if _, err := db.Query("SELECT FROM WHERE"); err == nil {
			t.Fatal("want parse error")
		}
	}
	post := db.PlanCacheStats()
	if post.Entries != pre.Entries {
		t.Fatalf("parse error was cached: pre %+v post %+v", pre, post)
	}
	if post.Hits != pre.Hits {
		t.Fatalf("parse error produced cache hits: pre %+v post %+v", pre, post)
	}
}

// TestPlanCacheEviction: the LRU bound holds and evictions are counted.
func TestPlanCacheEviction(t *testing.T) {
	db := newCacheDB(t)
	for i := 0; i < defaultPlanCacheCap+10; i++ {
		if _, err := db.Query(fmt.Sprintf("SELECT v FROM t WHERE id = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.PlanCacheStats()
	if st.Entries > defaultPlanCacheCap {
		t.Fatalf("cache grew past its cap: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions after overflow: %+v", st)
	}
}

// TestPlanCacheCrossSession: sessions share the database's cache, so a plan
// parsed in one session is a hit in another.
func TestPlanCacheCrossSession(t *testing.T) {
	db := newCacheDB(t)
	const q = "SELECT COUNT(*) FROM t"
	s1, s2 := db.NewSession(), db.NewSession()
	if _, err := s1.Exec(q); err != nil {
		t.Fatal(err)
	}
	pre := db.PlanCacheStats()
	r, err := s2.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	post := db.PlanCacheStats()
	if post.Hits != pre.Hits+1 {
		t.Fatalf("second session missed the shared cache: pre %+v post %+v", pre, post)
	}
	if r.Rows[0][0].Int != 3 {
		t.Fatalf("unexpected count %v", r.Rows[0][0])
	}
}

// TestPlanCacheConcurrent hammers the cache from parallel readers and
// writers, with DDL churn invalidating plans mid-flight; run under -race
// this doubles as the cache's thread-safety test.
func TestPlanCacheConcurrent(t *testing.T) {
	db := newCacheDB(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("SELECT v FROM t WHERE id = %d", i%8)
				if _, err := db.Query(q); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("ix%d", i)
			if _, err := db.Exec("CREATE INDEX " + name + " ON t (v)"); err != nil {
				t.Errorf("create index: %v", err)
				return
			}
			if _, err := db.Exec("DROP INDEX " + name); err != nil {
				t.Errorf("drop index: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 100; i < 200; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Deterministic tail: a cached plan survives a repeat (hit) and dies on
	// the next DDL (invalidation), regardless of how the race interleaved.
	const q = "SELECT MAX(v) FROM t"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	pre := db.PlanCacheStats()
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	mid := db.PlanCacheStats()
	if mid.Hits != pre.Hits+1 {
		t.Fatalf("repeat query was not a hit: pre %+v mid %+v", pre, mid)
	}
	if _, err := db.Exec("CREATE INDEX zz ON t (v)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	post := db.PlanCacheStats()
	if post.Invalidations != mid.Invalidations+1 {
		t.Fatalf("DDL did not invalidate the cached plan: mid %+v post %+v", mid, post)
	}
}
