package relational

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randDB builds a table of n rows with values drawn from a small domain so
// predicates select interesting subsets.
func randDB(t testing.TB, seed int64, n int) (*Database, []int64) {
	t.Helper()
	db := NewDatabase("prop", DialectOracle)
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT, s VARCHAR(8))"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		v := int64(rng.Intn(20))
		vals[i] = v
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 's%d')", i, v, v%3)); err != nil {
			t.Fatal(err)
		}
	}
	return db, vals
}

// TestPropCountMatchesInserts: COUNT(*) equals the number of inserted rows.
func TestPropCountMatchesInserts(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%64) + 1
		db, _ := randDB(t, seed, n)
		res, err := db.Query("SELECT COUNT(*) FROM t")
		return err == nil && res.Rows[0][0].Int == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropConjunctionIsIntersection: WHERE a AND b selects exactly the
// intersection of the two predicates.
func TestPropConjunctionIsIntersection(t *testing.T) {
	f := func(seed int64, lo, hi uint8) bool {
		a, b := int64(lo%20), int64(hi%20)
		db, vals := randDB(t, seed, 50)
		res, err := db.Query(fmt.Sprintf(
			"SELECT COUNT(*) FROM t WHERE v >= %d AND v <= %d", a, b))
		if err != nil {
			return false
		}
		want := int64(0)
		for _, v := range vals {
			if v >= a && v <= b {
				want++
			}
		}
		// BETWEEN must agree with the conjunction.
		res2, err := db.Query(fmt.Sprintf(
			"SELECT COUNT(*) FROM t WHERE v BETWEEN %d AND %d", a, b))
		if err != nil {
			return false
		}
		return res.Rows[0][0].Int == want && res2.Rows[0][0].Int == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropDeMorgan: NOT (a OR b) selects the same rows as (NOT a) AND (NOT b).
func TestPropDeMorgan(t *testing.T) {
	f := func(seed int64, x, y uint8) bool {
		a, b := int64(x%20), int64(y%20)
		db, _ := randDB(t, seed, 40)
		q1 := fmt.Sprintf("SELECT COUNT(*) FROM t WHERE NOT (v = %d OR v = %d)", a, b)
		q2 := fmt.Sprintf("SELECT COUNT(*) FROM t WHERE NOT v = %d AND NOT v = %d", a, b)
		r1, err1 := db.Query(q1)
		r2, err2 := db.Query(q2)
		return err1 == nil && err2 == nil && r1.Rows[0][0].Int == r2.Rows[0][0].Int
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropOrderBySorted: ORDER BY v yields a non-decreasing sequence and
// preserves cardinality.
func TestPropOrderBySorted(t *testing.T) {
	f := func(seed int64) bool {
		db, vals := randDB(t, seed, 40)
		res, err := db.Query("SELECT v FROM t ORDER BY v")
		if err != nil || len(res.Rows) != len(vals) {
			return false
		}
		got := make([]int64, len(res.Rows))
		for i, r := range res.Rows {
			got[i] = r[0].Int
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		// Same multiset.
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for i := range vals {
			if vals[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropLimitOffsetPagination: paging through with LIMIT/OFFSET visits
// every row exactly once, in order.
func TestPropLimitOffsetPagination(t *testing.T) {
	f := func(seed int64, pageRaw uint8) bool {
		page := int(pageRaw%7) + 1
		db, vals := randDB(t, seed, 30)
		var got []int64
		for off := 0; ; off += page {
			res, err := db.Query(fmt.Sprintf(
				"SELECT id FROM t ORDER BY id LIMIT %d OFFSET %d", page, off))
			if err != nil {
				return false
			}
			if len(res.Rows) == 0 {
				break
			}
			for _, r := range res.Rows {
				got = append(got, r[0].Int)
			}
		}
		if len(got) != len(vals) {
			return false
		}
		for i, id := range got {
			if id != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropGroupBySumEqualsTotal: the sum of per-group COUNT equals the
// total row count, and per-group sums add up to SUM(v).
func TestPropGroupBySumEqualsTotal(t *testing.T) {
	f := func(seed int64) bool {
		db, vals := randDB(t, seed, 40)
		res, err := db.Query("SELECT s, COUNT(*), SUM(v) FROM t GROUP BY s")
		if err != nil {
			return false
		}
		var count, sum int64
		for _, row := range res.Rows {
			count += row[1].Int
			sum += row[2].Int
		}
		var wantSum int64
		for _, v := range vals {
			wantSum += v
		}
		return count == int64(len(vals)) && sum == wantSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropIndexAgreesWithScan: a point query answered through an index
// returns exactly what a full scan returns.
func TestPropIndexAgreesWithScan(t *testing.T) {
	f := func(seed int64, probe uint8) bool {
		v := int64(probe % 20)
		db, _ := randDB(t, seed, 50)
		if _, err := db.Exec("CREATE INDEX iv ON t (v)"); err != nil {
			return false
		}
		// Indexed path (planner picks the index for v = literal).
		r1, err := db.Query(fmt.Sprintf("SELECT id FROM t WHERE v = %d ORDER BY id", v))
		if err != nil {
			return false
		}
		// Force a scan by obfuscating the predicate (v + 0 = literal).
		r2, err := db.Query(fmt.Sprintf("SELECT id FROM t WHERE v + 0 = %d ORDER BY id", v))
		if err != nil {
			return false
		}
		if len(r1.Rows) != len(r2.Rows) {
			return false
		}
		for i := range r1.Rows {
			if r1.Rows[i][0].Int != r2.Rows[i][0].Int {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropUnionAllCardinality: UNION ALL of disjoint predicates has the sum
// of the arms' cardinalities; plain UNION of identical arms collapses.
func TestPropUnionAllCardinality(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		pivot := int64(split % 20)
		db, vals := randDB(t, seed, 40)
		res, err := db.Query(fmt.Sprintf(
			"SELECT id FROM t WHERE v < %d UNION ALL SELECT id FROM t WHERE v >= %d", pivot, pivot))
		if err != nil || len(res.Rows) != len(vals) {
			return false
		}
		res, err = db.Query("SELECT s FROM t UNION SELECT s FROM t")
		if err != nil {
			return false
		}
		distinct := map[string]bool{}
		for _, v := range vals {
			distinct[fmt.Sprintf("s%d", v%3)] = true
		}
		return len(res.Rows) == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropDeleteInverseOfInsert: deleting everything WHERE matches leaves
// count equal to non-matching rows.
func TestPropDeleteInverseOfInsert(t *testing.T) {
	f := func(seed int64, cut uint8) bool {
		pivot := int64(cut % 20)
		db, vals := randDB(t, seed, 30)
		if _, err := db.Exec(fmt.Sprintf("DELETE FROM t WHERE v < %d", pivot)); err != nil {
			return false
		}
		res, err := db.Query("SELECT COUNT(*) FROM t")
		if err != nil {
			return false
		}
		want := int64(0)
		for _, v := range vals {
			if v >= pivot {
				want++
			}
		}
		return res.Rows[0][0].Int == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
