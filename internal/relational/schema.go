package relational

import (
	"fmt"
	"strings"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    ColType
	NotNull bool
	// Size is the declared VARCHAR/CHAR length (0 = unbounded). Enforced on
	// insert/update to mimic real engines.
	Size int
}

// Schema describes a table: its columns and primary key.
type Schema struct {
	Name    string
	Columns []Column
	// PrimaryKey holds column ordinals; empty means no primary key.
	PrimaryKey []int
}

// ColIndex returns the ordinal of the named column (case-insensitive), or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColNames lists column names in declaration order.
func (s *Schema) ColNames() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Validate checks schema well-formedness.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relational: table with empty name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("relational: table %s has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("relational: table %s: duplicate column %s", s.Name, c.Name)
		}
		seen[lc] = true
	}
	for _, ord := range s.PrimaryKey {
		if ord < 0 || ord >= len(s.Columns) {
			return fmt.Errorf("relational: table %s: primary key ordinal %d out of range", s.Name, ord)
		}
	}
	return nil
}

// DDL renders the schema as a CREATE TABLE statement (used by catalog dumps
// and the experiment reports).
func (s *Schema) DDL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", s.Name)
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		if c.Type == TypeText && c.Size > 0 {
			fmt.Fprintf(&b, "VARCHAR(%d)", c.Size)
		} else {
			b.WriteString(c.Type.String())
		}
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	if len(s.PrimaryKey) > 0 {
		b.WriteString(", PRIMARY KEY (")
		for i, ord := range s.PrimaryKey {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.Columns[ord].Name)
		}
		b.WriteByte(')')
	}
	b.WriteByte(')')
	return b.String()
}
