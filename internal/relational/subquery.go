package relational

import (
	"fmt"
	"strings"
)

// rewriteStmtSubqueries replaces Subquery expressions in a SELECT with their
// materialised results (an IN-list of literals, or a boolean literal for
// EXISTS). Subqueries are uncorrelated: they are evaluated once against the
// current database snapshot. The original statement is never mutated.
func (db *Database) rewriteStmtSubqueries(s *SelectStmt) (*SelectStmt, error) {
	changed := false
	out := *s
	rw := func(e Expr) (Expr, error) {
		ne, ch, err := db.rewriteSubqueries(e)
		if err != nil {
			return nil, err
		}
		changed = changed || ch
		return ne, nil
	}
	var err error
	if out.Where, err = rw(s.Where); err != nil {
		return nil, err
	}
	if out.Having, err = rw(s.Having); err != nil {
		return nil, err
	}
	if anySubquery(s.Items) {
		out.Items = append([]SelectItem(nil), s.Items...)
		for i := range out.Items {
			if out.Items[i].Expr == nil {
				continue
			}
			if out.Items[i].Expr, err = rw(out.Items[i].Expr); err != nil {
				return nil, err
			}
		}
	}
	if !changed {
		return s, nil
	}
	return &out, nil
}

func anySubquery(items []SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil && hasSubquery(it.Expr) {
			return true
		}
	}
	return false
}

// hasSubquery reports whether an expression tree contains a Subquery.
func hasSubquery(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *Subquery:
		return true
	case *Binary:
		return hasSubquery(x.L) || hasSubquery(x.R)
	case *Unary:
		return hasSubquery(x.X)
	case *IsNull:
		return hasSubquery(x.X)
	case *InList:
		if hasSubquery(x.X) {
			return true
		}
		for _, a := range x.List {
			if hasSubquery(a) {
				return true
			}
		}
	case *Between:
		return hasSubquery(x.X) || hasSubquery(x.Lo) || hasSubquery(x.Hi)
	case *FuncCall:
		for _, a := range x.Args {
			if hasSubquery(a) {
				return true
			}
		}
	}
	return false
}

// rewriteSubqueries materialises any Subquery nodes. The caller holds the
// database lock; nested selects run against the same snapshot.
func (db *Database) rewriteSubqueries(e Expr) (Expr, bool, error) {
	switch x := e.(type) {
	case nil:
		return nil, false, nil
	case *Subquery:
		res, err := db.execSelect(x.Select)
		if err != nil {
			return nil, false, fmt.Errorf("sql: subquery: %w", err)
		}
		if x.Exists {
			v := len(res.Rows) > 0
			if x.Negate {
				v = !v
			}
			return &Literal{Val: BoolValue(v)}, true, nil
		}
		if len(res.Columns) != 1 {
			return nil, false, fmt.Errorf("sql: IN subquery must return one column, got %d", len(res.Columns))
		}
		in := &InList{X: x.X, Negate: x.Negate}
		for _, row := range res.Rows {
			in.List = append(in.List, &Literal{Val: row[0]})
		}
		return in, true, nil
	case *Binary:
		l, lc, err := db.rewriteSubqueries(x.L)
		if err != nil {
			return nil, false, err
		}
		r, rc, err := db.rewriteSubqueries(x.R)
		if err != nil {
			return nil, false, err
		}
		if !lc && !rc {
			return x, false, nil
		}
		return &Binary{Op: x.Op, L: l, R: r}, true, nil
	case *Unary:
		in, ch, err := db.rewriteSubqueries(x.X)
		if err != nil || !ch {
			return x, false, err
		}
		return &Unary{Op: x.Op, X: in}, true, nil
	case *IsNull:
		in, ch, err := db.rewriteSubqueries(x.X)
		if err != nil || !ch {
			return x, false, err
		}
		return &IsNull{X: in, Negate: x.Negate}, true, nil
	case *Between:
		v, vc, err := db.rewriteSubqueries(x.X)
		if err != nil {
			return nil, false, err
		}
		lo, lc, err := db.rewriteSubqueries(x.Lo)
		if err != nil {
			return nil, false, err
		}
		hi, hc, err := db.rewriteSubqueries(x.Hi)
		if err != nil {
			return nil, false, err
		}
		if !vc && !lc && !hc {
			return x, false, nil
		}
		return &Between{X: v, Lo: lo, Hi: hi, Negate: x.Negate}, true, nil
	case *InList:
		v, vc, err := db.rewriteSubqueries(x.X)
		if err != nil {
			return nil, false, err
		}
		changed := vc
		list := x.List
		for i, item := range x.List {
			ni, ch, err := db.rewriteSubqueries(item)
			if err != nil {
				return nil, false, err
			}
			if ch {
				if !changed && i >= 0 {
					list = append([]Expr(nil), x.List...)
				}
				changed = true
				list[i] = ni
			}
		}
		if !changed {
			return x, false, nil
		}
		if !vc {
			v = x.X
		}
		return &InList{X: v, List: list, Negate: x.Negate}, true, nil
	case *FuncCall:
		changed := false
		args := x.Args
		for i, a := range x.Args {
			na, ch, err := db.rewriteSubqueries(a)
			if err != nil {
				return nil, false, err
			}
			if ch {
				if !changed {
					args = append([]Expr(nil), x.Args...)
				}
				changed = true
				args[i] = na
			}
		}
		if !changed {
			return x, false, nil
		}
		return &FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}, true, nil
	}
	return e, false, nil
}

// execUnion evaluates a UNION chain: the arms run independently, duplicates
// are removed across each plain-UNION boundary, and the head's ORDER BY /
// LIMIT / OFFSET apply to the combined rows (ORDER BY may use output column
// names or 1-based ordinals).
func (db *Database) execUnion(s *SelectStmt) (*Result, error) {
	var combined *Result
	prevAll := false
	for arm := s; arm != nil; arm = arm.Union {
		armCopy := *arm
		armCopy.Union = nil
		armCopy.OrderBy = nil
		armCopy.Limit = -1
		armCopy.Offset = 0
		res, err := db.execSelectArm(&armCopy)
		if err != nil {
			return nil, err
		}
		if combined == nil {
			combined = res
		} else {
			if len(res.Columns) != len(combined.Columns) {
				return nil, fmt.Errorf("sql: UNION arms have %d and %d columns",
					len(combined.Columns), len(res.Columns))
			}
			combined.Rows = append(combined.Rows, res.Rows...)
			if !prevAll {
				combined.Rows = dedupeRows(combined.Rows)
			}
		}
		prevAll = arm.UnionAll
	}

	if len(s.OrderBy) > 0 {
		if err := sortByOutput(combined, s.OrderBy); err != nil {
			return nil, err
		}
	}
	if s.Offset > 0 {
		if s.Offset >= len(combined.Rows) {
			combined.Rows = nil
		} else {
			combined.Rows = combined.Rows[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(combined.Rows) {
		combined.Rows = combined.Rows[:s.Limit]
	}
	return combined, nil
}

func dedupeRows(rows []Row) []Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := encodeKey(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// sortByOutput sorts a result by ORDER BY keys resolved against the output
// columns: bare names match column headers, integer literals are 1-based
// ordinals.
func sortByOutput(res *Result, order []OrderItem) error {
	ords := make([]int, len(order))
	for i, oi := range order {
		switch e := oi.Expr.(type) {
		case *ColRef:
			if e.Table != "" {
				return fmt.Errorf("sql: UNION ORDER BY must use output column names")
			}
			found := -1
			for ci, c := range res.Columns {
				if strings.EqualFold(c, e.Name) {
					found = ci
					break
				}
			}
			if found < 0 {
				return fmt.Errorf("sql: ORDER BY column %s not in UNION output", e.Name)
			}
			ords[i] = found
		case *Literal:
			if e.Val.Kind != TypeInt || e.Val.Int < 1 || int(e.Val.Int) > len(res.Columns) {
				return fmt.Errorf("sql: ORDER BY ordinal %s out of range", e.Val)
			}
			ords[i] = int(e.Val.Int) - 1
		default:
			return fmt.Errorf("sql: UNION ORDER BY supports column names and ordinals only")
		}
	}
	sortRowsBy(res.Rows, ords, order)
	return nil
}

func sortRowsBy(rows []Row, ords []int, order []OrderItem) {
	stableSortRows(rows, func(a, b Row) bool {
		for i, ord := range ords {
			c := Compare(a[ord], b[ord])
			if c == 0 {
				continue
			}
			if order[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// stableSortRows is a minimal stable merge sort (keeps sort import local).
func stableSortRows(rows []Row, less func(a, b Row) bool) {
	if len(rows) < 2 {
		return
	}
	mid := len(rows) / 2
	left := append([]Row(nil), rows[:mid]...)
	right := append([]Row(nil), rows[mid:]...)
	stableSortRows(left, less)
	stableSortRows(right, less)
	i, j := 0, 0
	for k := range rows {
		switch {
		case i < len(left) && (j >= len(right) || !less(right[j], left[i])):
			rows[k] = left[i]
			i++
		default:
			rows[k] = right[j]
			j++
		}
	}
}

// explainSelect renders the execution plan the engine would use for a
// SELECT, re-deriving the planner's decisions (pushdown, index selection,
// join strategy, aggregation, ordering).
func (db *Database) explainSelect(s *SelectStmt) (*Result, error) {
	res := &Result{Columns: []string{"plan"}}
	emit := func(depth int, format string, args ...any) {
		res.Rows = append(res.Rows, Row{TextValue(strings.Repeat("  ", depth) + fmt.Sprintf(format, args...))})
	}
	var explainArm func(s *SelectStmt, depth int) error
	explainArm = func(s *SelectStmt, depth int) error {
		grouped := len(s.GroupBy) > 0 || s.Having != nil || anyAggregate(s.Items)
		if s.Limit >= 0 || s.Offset > 0 {
			emit(depth, "limit %d offset %d", s.Limit, s.Offset)
			depth++
		}
		if len(s.OrderBy) > 0 {
			keys := make([]string, len(s.OrderBy))
			for i, oi := range s.OrderBy {
				keys[i] = oi.Expr.String()
				if oi.Desc {
					keys[i] += " DESC"
				}
			}
			emit(depth, "sort by %s", strings.Join(keys, ", "))
			depth++
		}
		if s.Distinct {
			emit(depth, "distinct")
			depth++
		}
		if grouped {
			if len(s.GroupBy) > 0 {
				keys := make([]string, len(s.GroupBy))
				for i, g := range s.GroupBy {
					keys[i] = g.String()
				}
				emit(depth, "aggregate group by %s", strings.Join(keys, ", "))
			} else {
				emit(depth, "aggregate (single group)")
			}
			depth++
		}

		if len(s.From) == 0 {
			emit(depth, "values (no FROM)")
			return nil
		}

		// Recompute the pushdown partition exactly as buildFrom does.
		type scanSpec struct {
			ref TableRef
			t   *Table
		}
		var specs []scanSpec
		for _, tr := range s.From {
			t, err := db.table(tr.Name)
			if err != nil {
				return err
			}
			specs = append(specs, scanSpec{tr, t})
		}
		for _, jc := range s.Joins {
			t, err := db.table(jc.Table.Name)
			if err != nil {
				return err
			}
			specs = append(specs, scanSpec{jc.Table, t})
		}
		var allCols []colBinding
		for _, sp := range specs {
			b := strings.ToLower(sp.ref.Binding())
			for _, c := range sp.t.schema.Columns {
				allCols = append(allCols, colBinding{table: b, name: strings.ToLower(c.Name)})
			}
		}
		pushed := make(map[string][]Expr)
		var residual []Expr
		for _, conj := range splitConjuncts(s.Where) {
			if tbl, ok := singleBinding(conj, allCols); ok {
				pushed[tbl] = append(pushed[tbl], conj)
			} else {
				residual = append(residual, conj)
			}
		}
		for _, jc := range s.Joins {
			if jc.Kind == "LEFT" {
				b := strings.ToLower(jc.Table.Binding())
				residual = append(residual, pushed[b]...)
				delete(pushed, b)
			}
		}
		if len(residual) > 0 {
			emit(depth, "filter %s", andAll(residual).String())
			depth++
		}

		describeScan := func(sp scanSpec, depth int) {
			b := strings.ToLower(sp.ref.Binding())
			filter := andAll(pushed[b])
			env := &evalEnv{}
			for _, c := range sp.t.schema.Columns {
				env.cols = append(env.cols, colBinding{table: b, name: strings.ToLower(c.Name)})
			}
			access := "seq scan"
			if filter != nil {
				if col, _, ok := indexableEquality(sp.t, filter, env); ok {
					if ix := sp.t.singleColIndex(col); ix != nil {
						access = fmt.Sprintf("index lookup %s(%s)", ix.Name, sp.t.schema.Columns[col].Name)
					}
				}
			}
			line := fmt.Sprintf("%s %s", access, sp.t.schema.Name)
			if sp.ref.Alias != "" {
				line += " as " + sp.ref.Alias
			}
			if filter != nil {
				line += " filter " + filter.String()
			}
			emit(depth, "%s", line)
		}

		describeScan(specs[0], depth)
		for i := 1; i < len(s.From); i++ {
			emit(depth, "cross join")
			describeScan(specs[i], depth+1)
		}
		for ji, jc := range s.Joins {
			sp := specs[len(s.From)+ji]
			switch jc.Kind {
			case "CROSS":
				emit(depth, "cross join")
			case "INNER":
				// Probe for hash-join eligibility against the left side's
				// accumulated columns (conservative: full binding set).
				strategy := "nested-loop join"
				var rightCols []colBinding
				b := strings.ToLower(sp.ref.Binding())
				for _, c := range sp.t.schema.Columns {
					rightCols = append(rightCols, colBinding{table: b, name: strings.ToLower(c.Name)})
				}
				if lk, _ := equiKeys(jc.On, allCols, rightCols); lk != nil {
					strategy = "hash join"
				}
				emit(depth, "%s on %s", strategy, jc.On.String())
			case "LEFT":
				emit(depth, "left join on %s", jc.On.String())
			}
			describeScan(sp, depth+1)
		}
		return nil
	}

	for arm := s; arm != nil; arm = arm.Union {
		if arm != s {
			op := "union"
			// The ALL flag lives on the node linking to this arm.
			emit(0, "%s", op)
		}
		armCopy := *arm
		if arm != s {
			armCopy.OrderBy = nil
			armCopy.Limit = -1
		}
		if err := explainArm(&armCopy, boolToInt(arm != s)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
