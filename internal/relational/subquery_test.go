package relational

import (
	"strings"
	"testing"
)

func newOrdersDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("shop", DialectOracle)
	if _, err := db.ExecScript(`
		CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR(32), city VARCHAR(32));
		CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, total FLOAT);
		INSERT INTO customers VALUES
			(1, 'Ada', 'Brisbane'), (2, 'Ben', 'Cairns'), (3, 'Cho', 'Brisbane');
		INSERT INTO orders VALUES
			(10, 1, 99.5), (11, 1, 12.0), (12, 3, 40.0);
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInSubquery(t *testing.T) {
	db := newOrdersDB(t)
	res := mustQuery(t, db, `SELECT name FROM customers
		WHERE id IN (SELECT customer_id FROM orders WHERE total > 30) ORDER BY name`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "Ada" || res.Rows[1][0].Str != "Cho" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// NOT IN.
	res = mustQuery(t, db, `SELECT name FROM customers
		WHERE id NOT IN (SELECT customer_id FROM orders) ORDER BY name`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "Ben" {
		t.Fatalf("not-in rows = %v", res.Rows)
	}
	// Multi-column subquery is rejected.
	if _, err := db.Query("SELECT name FROM customers WHERE id IN (SELECT id, customer_id FROM orders)"); err == nil {
		t.Error("multi-column IN subquery accepted")
	}
}

func TestExistsSubquery(t *testing.T) {
	db := newOrdersDB(t)
	res := mustQuery(t, db, `SELECT COUNT(*) FROM customers WHERE EXISTS (SELECT 1 FROM orders WHERE total > 90)`)
	if res.Rows[0][0].Int != 3 {
		t.Errorf("exists-true count = %v", res.Rows[0][0])
	}
	res = mustQuery(t, db, `SELECT COUNT(*) FROM customers WHERE EXISTS (SELECT 1 FROM orders WHERE total > 900)`)
	if res.Rows[0][0].Int != 0 {
		t.Errorf("exists-false count = %v", res.Rows[0][0])
	}
	res = mustQuery(t, db, `SELECT COUNT(*) FROM customers WHERE NOT EXISTS (SELECT 1 FROM orders WHERE total > 900)`)
	if res.Rows[0][0].Int != 3 {
		t.Errorf("not-exists count = %v", res.Rows[0][0])
	}
}

func TestSubqueryInDML(t *testing.T) {
	db := newOrdersDB(t)
	res := mustExec(t, db, `DELETE FROM orders WHERE customer_id IN (SELECT id FROM customers WHERE city = 'Brisbane')`)
	if res.RowsAffected != 3 {
		t.Fatalf("delete affected %d", res.RowsAffected)
	}
	db2 := newOrdersDB(t)
	res = mustExec(t, db2, `UPDATE customers SET city = 'Gold Coast'
		WHERE id IN (SELECT customer_id FROM orders WHERE total < 50)`)
	if res.RowsAffected != 2 {
		t.Fatalf("update affected %d", res.RowsAffected)
	}
}

func TestNestedSubquery(t *testing.T) {
	db := newOrdersDB(t)
	res := mustQuery(t, db, `SELECT name FROM customers WHERE id IN (
		SELECT customer_id FROM orders WHERE customer_id IN (
			SELECT id FROM customers WHERE city = 'Brisbane')) ORDER BY name`)
	if len(res.Rows) != 2 {
		t.Fatalf("nested rows = %v", res.Rows)
	}
}

func TestUnion(t *testing.T) {
	db := newOrdersDB(t)
	res := mustQuery(t, db, `SELECT city FROM customers WHERE id = 1
		UNION SELECT city FROM customers WHERE id = 3`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "Brisbane" {
		t.Fatalf("union dedupe rows = %v", res.Rows)
	}
	res = mustQuery(t, db, `SELECT city FROM customers WHERE id = 1
		UNION ALL SELECT city FROM customers WHERE id = 3`)
	if len(res.Rows) != 2 {
		t.Fatalf("union all rows = %v", res.Rows)
	}
	// Three arms with combined ORDER BY and LIMIT.
	res = mustQuery(t, db, `SELECT name FROM customers WHERE id = 2
		UNION SELECT name FROM customers WHERE id = 1
		UNION SELECT name FROM customers WHERE id = 3
		ORDER BY name DESC LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "Cho" || res.Rows[1][0].Str != "Ben" {
		t.Fatalf("union order/limit = %v", res.Rows)
	}
	// Ordinal ORDER BY over a union.
	res = mustQuery(t, db, `SELECT name, id FROM customers WHERE id <= 2
		UNION SELECT name, id FROM customers WHERE id = 3
		ORDER BY 2 DESC`)
	if res.Rows[0][1].Int != 3 {
		t.Fatalf("ordinal order = %v", res.Rows)
	}
	// Mismatched arm widths.
	if _, err := db.Query("SELECT id FROM customers UNION SELECT id, name FROM customers"); err == nil {
		t.Error("mismatched union widths accepted")
	}
	// Bad ORDER BY column on a union.
	if _, err := db.Query("SELECT id FROM customers UNION SELECT id FROM customers ORDER BY nope"); err == nil {
		t.Error("unknown union order column accepted")
	}
}

func TestOrdinalOrderByPlain(t *testing.T) {
	db := newOrdersDB(t)
	res := mustQuery(t, db, "SELECT name, id FROM customers ORDER BY 2 DESC")
	if res.Rows[0][0].Str != "Cho" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := db.Query("SELECT name FROM customers ORDER BY 5"); err == nil {
		t.Error("out-of-range ordinal accepted")
	}
}

func TestExplain(t *testing.T) {
	db := newOrdersDB(t)
	mustExec(t, db, "CREATE INDEX idx_city ON customers (city)")
	res := mustQuery(t, db, `EXPLAIN SELECT c.name, COUNT(*) FROM customers c
		JOIN orders o ON c.id = o.customer_id
		WHERE c.city = 'Brisbane'
		GROUP BY c.name ORDER BY c.name LIMIT 5`)
	text := ""
	for _, row := range res.Rows {
		text += row[0].Str + "\n"
	}
	for _, want := range []string{
		"limit 5", "sort by c.name", "aggregate group by c.name",
		"hash join on", "index lookup idx_city(city)", "seq scan orders",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("plan missing %q:\n%s", want, text)
		}
	}
	// EXPLAIN of a point select shows the PK index.
	res = mustQuery(t, db, "EXPLAIN SELECT * FROM customers WHERE id = 1")
	joined := ""
	for _, r := range res.Rows {
		joined += r[0].Str + "\n"
	}
	if !strings.Contains(joined, "index lookup pk_customers(id)") {
		t.Errorf("pk plan:\n%s", joined)
	}
}

func TestDialectGatesSubqueriesAndUnion(t *testing.T) {
	db := NewDatabase("m", DialectMSQL)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	if _, err := db.Query("SELECT a FROM t WHERE a IN (SELECT a FROM t)"); err == nil ||
		!strings.Contains(err.Error(), "mSQL") {
		t.Errorf("mSQL subquery error = %v", err)
	}
	if _, err := db.Query("SELECT a FROM t UNION SELECT a FROM t"); err == nil ||
		!strings.Contains(err.Error(), "mSQL") {
		t.Errorf("mSQL union error = %v", err)
	}
	ora := newOrdersDB(t)
	if _, err := ora.Query("SELECT id FROM customers UNION SELECT id FROM orders"); err != nil {
		t.Errorf("Oracle union rejected: %v", err)
	}
}
