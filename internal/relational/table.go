package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Index is a secondary (or primary-key) index over one or more columns. The
// key for a single-column index is the column value itself, which enables
// range scans; multi-column keys are encoded strings and support equality
// only.
type Index struct {
	Name   string
	Cols   []int
	Unique bool
	tree   *btree
}

func (ix *Index) keyFor(row Row) Value {
	if len(ix.Cols) == 1 {
		return row[ix.Cols[0]]
	}
	vals := make([]Value, len(ix.Cols))
	for i, c := range ix.Cols {
		vals[i] = row[c]
	}
	return TextValue(encodeKey(vals))
}

// Table is one table with optional indexes, stored column-major: cols[c][s]
// holds the value of column c in slot s, so the batched executor can scan a
// column as one contiguous vector. Slots are append-only between
// compactions, which keeps slot order equal to insertion order. All access
// is mediated by the owning Database's lock.
type Table struct {
	schema  Schema
	cols    [][]Value     // one value vector per schema column; equal lengths
	ids     []int64       // slot -> row ID
	live    []bool        // slot liveness; false marks a tombstone
	slots   map[int64]int // row ID -> slot, for live rows and tombstones
	dead    int           // tombstoned slots not yet compacted away
	nextID  int64
	indexes map[string]*Index // by lower-cased index name
	pk      *Index            // non-nil when the schema has a primary key
}

func newTable(schema Schema) *Table {
	t := &Table{
		schema:  schema,
		cols:    make([][]Value, len(schema.Columns)),
		slots:   make(map[int64]int),
		indexes: make(map[string]*Index),
	}
	if len(schema.PrimaryKey) > 0 {
		t.pk = &Index{
			Name:   "pk_" + strings.ToLower(schema.Name),
			Cols:   append([]int(nil), schema.PrimaryKey...),
			Unique: true,
			tree:   newBTree(),
		}
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return &t.schema }

// Len reports the live row count.
func (t *Table) Len() int { return len(t.ids) - t.dead }

// checkRow validates a row against column constraints and coerces values to
// the declared types.
func (t *Table) checkRow(row Row) (Row, error) {
	if len(row) != len(t.schema.Columns) {
		return nil, fmt.Errorf("relational: table %s expects %d values, got %d",
			t.schema.Name, len(t.schema.Columns), len(row))
	}
	out := make(Row, len(row))
	for i, col := range t.schema.Columns {
		v, err := Coerce(row[i], col.Type)
		if err != nil {
			return nil, fmt.Errorf("relational: table %s column %s: %w", t.schema.Name, col.Name, err)
		}
		if v.Null && col.NotNull {
			return nil, fmt.Errorf("relational: table %s column %s: NULL not allowed", t.schema.Name, col.Name)
		}
		if col.Size > 0 && !v.Null && len(v.Str) > col.Size {
			return nil, fmt.Errorf("relational: table %s column %s: value exceeds VARCHAR(%d)",
				t.schema.Name, col.Name, col.Size)
		}
		out[i] = v
	}
	return out, nil
}

// appendRow appends a row in a fresh slot at the end of the scan order.
func (t *Table) appendRow(id int64, row Row) {
	for c := range t.cols {
		t.cols[c] = append(t.cols[c], row[c])
	}
	t.ids = append(t.ids, id)
	t.live = append(t.live, true)
	t.slots[id] = len(t.ids) - 1
}

// rowAt materialises a copy of the row stored in the given slot.
func (t *Table) rowAt(s int) Row {
	row := make(Row, len(t.cols))
	for c, col := range t.cols {
		row[c] = col[s]
	}
	return row
}

// rowByID materialises a copy of the live row with the given ID.
func (t *Table) rowByID(id int64) (Row, bool) {
	s, ok := t.slots[id]
	if !ok || !t.live[s] {
		return nil, false
	}
	return t.rowAt(s), true
}

// insert adds a row, enforcing uniqueness, and returns its row ID.
func (t *Table) insert(row Row) (int64, error) {
	row, err := t.checkRow(row)
	if err != nil {
		return 0, err
	}
	if err := t.checkUnique(row, -1); err != nil {
		return 0, err
	}
	t.nextID++
	id := t.nextID
	t.appendRow(id, row)
	t.indexRow(id, row)
	return id, nil
}

// insertWithID restores a row under a prior ID (transaction rollback path).
// If the ID's tombstoned slot is still present, the row reappears at its
// original position in the scan order.
func (t *Table) insertWithID(id int64, row Row) error {
	if s, ok := t.slots[id]; ok {
		if t.live[s] {
			return fmt.Errorf("relational: table %s: row %d already exists", t.schema.Name, id)
		}
		for c := range t.cols {
			t.cols[c][s] = row[c]
		}
		t.live[s] = true
		t.dead--
	} else {
		t.appendRow(id, row)
	}
	t.indexRow(id, row)
	return nil
}

func (t *Table) checkUnique(row Row, skipID int64) error {
	check := func(ix *Index, label string) error {
		key := ix.keyFor(row)
		if key.Null {
			return nil // NULLs never collide, per SQL
		}
		for _, id := range ix.tree.Lookup(key) {
			if id != skipID {
				return fmt.Errorf("relational: table %s: duplicate %s value %s",
					t.schema.Name, label, key)
			}
		}
		return nil
	}
	if t.pk != nil {
		if err := check(t.pk, "primary key"); err != nil {
			return err
		}
	}
	for _, ix := range t.indexes {
		if !ix.Unique {
			continue
		}
		if err := check(ix, "unique index "+ix.Name); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) indexRow(id int64, row Row) {
	if t.pk != nil {
		t.pk.tree.Insert(t.pk.keyFor(row), id)
	}
	for _, ix := range t.indexes {
		ix.tree.Insert(ix.keyFor(row), id)
	}
}

func (t *Table) unindexRow(id int64, row Row) {
	if t.pk != nil {
		t.pk.tree.Delete(t.pk.keyFor(row), id)
	}
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.keyFor(row), id)
	}
}

// delete removes the row with the given ID and returns the old row.
func (t *Table) delete(id int64) (Row, error) {
	s, ok := t.slots[id]
	if !ok || !t.live[s] {
		return nil, fmt.Errorf("relational: table %s: no row %d", t.schema.Name, id)
	}
	row := t.rowAt(s)
	t.live[s] = false
	t.dead++
	for c := range t.cols {
		t.cols[c][s] = Value{} // release payload references
	}
	t.unindexRow(id, row)
	t.maybeCompact()
	return row, nil
}

// update replaces the row with the given ID and returns the old row.
func (t *Table) update(id int64, newRow Row) (Row, error) {
	s, ok := t.slots[id]
	if !ok || !t.live[s] {
		return nil, fmt.Errorf("relational: table %s: no row %d", t.schema.Name, id)
	}
	old := t.rowAt(s)
	newRow, err := t.checkRow(newRow)
	if err != nil {
		return nil, err
	}
	if err := t.checkUnique(newRow, id); err != nil {
		return nil, err
	}
	t.unindexRow(id, old)
	for c := range t.cols {
		t.cols[c][s] = newRow[c]
	}
	t.indexRow(id, newRow)
	return old, nil
}

// maybeCompact squeezes tombstoned slots out of the column vectors when they
// dominate, preserving the relative order of live rows.
func (t *Table) maybeCompact() {
	if t.dead < 64 || t.dead*2 < len(t.ids) {
		return
	}
	w := 0
	for s, id := range t.ids {
		if !t.live[s] {
			delete(t.slots, id)
			continue
		}
		if w != s {
			for c := range t.cols {
				t.cols[c][w] = t.cols[c][s]
			}
			t.ids[w] = id
			t.slots[id] = w
		}
		w++
	}
	for c := range t.cols {
		clear(t.cols[c][w:])
		t.cols[c] = t.cols[c][:w]
	}
	t.ids = t.ids[:w]
	t.live = t.live[:w]
	for s := range t.live {
		t.live[s] = true
	}
	t.dead = 0
}

// scan visits live rows in insertion order; fn returns false to stop. The
// row passed to fn aliases a buffer reused across calls and must not be
// retained past the callback.
func (t *Table) scan(fn func(id int64, row Row) bool) {
	buf := make(Row, len(t.cols))
	for s, id := range t.ids {
		if !t.live[s] {
			continue
		}
		for c, col := range t.cols {
			buf[c] = col[s]
		}
		if !fn(id, buf) {
			return
		}
	}
}

// lookupEqual returns IDs of rows whose indexed column equals v, given any
// index covering exactly that single column. Returns ok=false when no such
// index exists.
func (t *Table) lookupEqual(col int, v Value) ([]int64, bool) {
	ix := t.singleColIndex(col)
	if ix == nil {
		return nil, false
	}
	return append([]int64(nil), ix.tree.Lookup(v)...), true
}

// rangeScan visits row IDs with lo <= key <= hi on a single-column index.
func (t *Table) rangeScan(col int, lo, hi *Value, loIncl, hiIncl bool, fn func(id int64) bool) bool {
	ix := t.singleColIndex(col)
	if ix == nil {
		return false
	}
	ix.tree.Range(lo, hi, loIncl, hiIncl, func(_ Value, ids []int64) bool {
		for _, id := range ids {
			if !fn(id) {
				return false
			}
		}
		return true
	})
	return true
}

func (t *Table) singleColIndex(col int) *Index {
	if t.pk != nil && len(t.pk.Cols) == 1 && t.pk.Cols[0] == col {
		return t.pk
	}
	for _, ix := range t.indexes {
		if len(ix.Cols) == 1 && ix.Cols[0] == col {
			return ix
		}
	}
	return nil
}

// createIndex builds a new secondary index over an existing table.
func (t *Table) createIndex(name string, col int, unique bool) error {
	key := strings.ToLower(name)
	if _, exists := t.indexes[key]; exists {
		return fmt.Errorf("relational: index %s already exists", name)
	}
	ix := &Index{Name: name, Cols: []int{col}, Unique: unique, tree: newBTree()}
	// Verify uniqueness before publishing the index.
	if unique {
		seen := make(map[string]bool, t.Len())
		var dupErr error
		t.scan(func(_ int64, row Row) bool {
			v := ix.keyFor(row)
			if v.Null {
				return true
			}
			k := encodeKey([]Value{v})
			if seen[k] {
				dupErr = fmt.Errorf("relational: cannot create unique index %s: duplicate value %s", name, v)
				return false
			}
			seen[k] = true
			return true
		})
		if dupErr != nil {
			return dupErr
		}
	}
	t.scan(func(id int64, row Row) bool {
		ix.tree.Insert(ix.keyFor(row), id)
		return true
	})
	t.indexes[key] = ix
	return nil
}

func (t *Table) dropIndex(name string) error {
	key := strings.ToLower(name)
	if _, ok := t.indexes[key]; !ok {
		return fmt.Errorf("relational: no index %s on table %s", name, t.schema.Name)
	}
	delete(t.indexes, key)
	return nil
}

// IndexNames lists the table's secondary indexes, sorted.
func (t *Table) IndexNames() []string {
	names := make([]string, 0, len(t.indexes))
	for _, ix := range t.indexes {
		names = append(names, ix.Name)
	}
	sort.Strings(names)
	return names
}
