package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Index is a secondary (or primary-key) index over one or more columns. The
// key for a single-column index is the column value itself, which enables
// range scans; multi-column keys are encoded strings and support equality
// only.
type Index struct {
	Name   string
	Cols   []int
	Unique bool
	tree   *btree
}

func (ix *Index) keyFor(row Row) Value {
	if len(ix.Cols) == 1 {
		return row[ix.Cols[0]]
	}
	vals := make([]Value, len(ix.Cols))
	for i, c := range ix.Cols {
		vals[i] = row[c]
	}
	return TextValue(encodeKey(vals))
}

// Table is one heap-organised table with optional indexes. All access is
// mediated by the owning Database's lock.
type Table struct {
	schema  Schema
	rows    map[int64]Row
	order   []int64        // insertion order; may contain IDs of deleted rows
	inOrder map[int64]bool // IDs present in order (live or tombstoned)
	holes   int            // deleted entries still present in order
	nextID  int64
	indexes map[string]*Index // by lower-cased index name
	pk      *Index            // non-nil when the schema has a primary key
}

func newTable(schema Schema) *Table {
	t := &Table{
		schema:  schema,
		rows:    make(map[int64]Row),
		inOrder: make(map[int64]bool),
		indexes: make(map[string]*Index),
	}
	if len(schema.PrimaryKey) > 0 {
		t.pk = &Index{
			Name:   "pk_" + strings.ToLower(schema.Name),
			Cols:   append([]int(nil), schema.PrimaryKey...),
			Unique: true,
			tree:   newBTree(),
		}
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return &t.schema }

// Len reports the live row count.
func (t *Table) Len() int { return len(t.rows) }

// checkRow validates a row against column constraints and coerces values to
// the declared types.
func (t *Table) checkRow(row Row) (Row, error) {
	if len(row) != len(t.schema.Columns) {
		return nil, fmt.Errorf("relational: table %s expects %d values, got %d",
			t.schema.Name, len(t.schema.Columns), len(row))
	}
	out := make(Row, len(row))
	for i, col := range t.schema.Columns {
		v, err := Coerce(row[i], col.Type)
		if err != nil {
			return nil, fmt.Errorf("relational: table %s column %s: %w", t.schema.Name, col.Name, err)
		}
		if v.Null && col.NotNull {
			return nil, fmt.Errorf("relational: table %s column %s: NULL not allowed", t.schema.Name, col.Name)
		}
		if col.Size > 0 && !v.Null && len(v.Str) > col.Size {
			return nil, fmt.Errorf("relational: table %s column %s: value exceeds VARCHAR(%d)",
				t.schema.Name, col.Name, col.Size)
		}
		out[i] = v
	}
	return out, nil
}

// insert adds a row, enforcing uniqueness, and returns its row ID.
func (t *Table) insert(row Row) (int64, error) {
	row, err := t.checkRow(row)
	if err != nil {
		return 0, err
	}
	if err := t.checkUnique(row, -1); err != nil {
		return 0, err
	}
	t.nextID++
	id := t.nextID
	t.rows[id] = row
	t.order = append(t.order, id)
	t.inOrder[id] = true
	t.indexRow(id, row)
	return id, nil
}

// insertWithID restores a row under a prior ID (transaction rollback path).
// If the ID's tombstone is still in the scan order, the row reappears at its
// original position.
func (t *Table) insertWithID(id int64, row Row) error {
	if _, exists := t.rows[id]; exists {
		return fmt.Errorf("relational: table %s: row %d already exists", t.schema.Name, id)
	}
	t.rows[id] = row
	if t.inOrder[id] {
		t.holes--
	} else {
		t.order = append(t.order, id)
		t.inOrder[id] = true
	}
	t.indexRow(id, row)
	return nil
}

func (t *Table) checkUnique(row Row, skipID int64) error {
	check := func(ix *Index, label string) error {
		key := ix.keyFor(row)
		if key.Null {
			return nil // NULLs never collide, per SQL
		}
		for _, id := range ix.tree.Lookup(key) {
			if id != skipID {
				return fmt.Errorf("relational: table %s: duplicate %s value %s",
					t.schema.Name, label, key)
			}
		}
		return nil
	}
	if t.pk != nil {
		if err := check(t.pk, "primary key"); err != nil {
			return err
		}
	}
	for _, ix := range t.indexes {
		if !ix.Unique {
			continue
		}
		if err := check(ix, "unique index "+ix.Name); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) indexRow(id int64, row Row) {
	if t.pk != nil {
		t.pk.tree.Insert(t.pk.keyFor(row), id)
	}
	for _, ix := range t.indexes {
		ix.tree.Insert(ix.keyFor(row), id)
	}
}

func (t *Table) unindexRow(id int64, row Row) {
	if t.pk != nil {
		t.pk.tree.Delete(t.pk.keyFor(row), id)
	}
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.keyFor(row), id)
	}
}

// delete removes the row with the given ID and returns the old row.
func (t *Table) delete(id int64) (Row, error) {
	row, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("relational: table %s: no row %d", t.schema.Name, id)
	}
	delete(t.rows, id)
	t.unindexRow(id, row)
	t.holes++
	t.maybeCompactOrder()
	return row, nil
}

// update replaces the row with the given ID and returns the old row.
func (t *Table) update(id int64, newRow Row) (Row, error) {
	old, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("relational: table %s: no row %d", t.schema.Name, id)
	}
	newRow, err := t.checkRow(newRow)
	if err != nil {
		return nil, err
	}
	if err := t.checkUnique(newRow, id); err != nil {
		return nil, err
	}
	t.unindexRow(id, old)
	t.rows[id] = newRow
	t.indexRow(id, newRow)
	return old, nil
}

// maybeCompactOrder drops deleted IDs from the scan order when they dominate.
func (t *Table) maybeCompactOrder() {
	if t.holes < 64 || t.holes*2 < len(t.order) {
		return
	}
	live := t.order[:0]
	for _, id := range t.order {
		if _, ok := t.rows[id]; ok {
			live = append(live, id)
		} else {
			delete(t.inOrder, id)
		}
	}
	t.order = live
	t.holes = 0
}

// scan visits live rows in insertion order; fn returns false to stop.
func (t *Table) scan(fn func(id int64, row Row) bool) {
	for _, id := range t.order {
		row, ok := t.rows[id]
		if !ok {
			continue
		}
		if !fn(id, row) {
			return
		}
	}
}

// lookupEqual returns IDs of rows whose indexed column equals v, given any
// index covering exactly that single column. Returns ok=false when no such
// index exists.
func (t *Table) lookupEqual(col int, v Value) ([]int64, bool) {
	ix := t.singleColIndex(col)
	if ix == nil {
		return nil, false
	}
	return append([]int64(nil), ix.tree.Lookup(v)...), true
}

// rangeScan visits row IDs with lo <= key <= hi on a single-column index.
func (t *Table) rangeScan(col int, lo, hi *Value, loIncl, hiIncl bool, fn func(id int64) bool) bool {
	ix := t.singleColIndex(col)
	if ix == nil {
		return false
	}
	ix.tree.Range(lo, hi, loIncl, hiIncl, func(_ Value, ids []int64) bool {
		for _, id := range ids {
			if !fn(id) {
				return false
			}
		}
		return true
	})
	return true
}

func (t *Table) singleColIndex(col int) *Index {
	if t.pk != nil && len(t.pk.Cols) == 1 && t.pk.Cols[0] == col {
		return t.pk
	}
	for _, ix := range t.indexes {
		if len(ix.Cols) == 1 && ix.Cols[0] == col {
			return ix
		}
	}
	return nil
}

// createIndex builds a new secondary index over an existing table.
func (t *Table) createIndex(name string, col int, unique bool) error {
	key := strings.ToLower(name)
	if _, exists := t.indexes[key]; exists {
		return fmt.Errorf("relational: index %s already exists", name)
	}
	ix := &Index{Name: name, Cols: []int{col}, Unique: unique, tree: newBTree()}
	// Verify uniqueness before publishing the index.
	if unique {
		seen := make(map[string]bool, len(t.rows))
		for _, row := range t.rows {
			v := ix.keyFor(row)
			if v.Null {
				continue
			}
			k := encodeKey([]Value{v})
			if seen[k] {
				return fmt.Errorf("relational: cannot create unique index %s: duplicate value %s", name, v)
			}
			seen[k] = true
		}
	}
	t.scan(func(id int64, row Row) bool {
		ix.tree.Insert(ix.keyFor(row), id)
		return true
	})
	t.indexes[key] = ix
	return nil
}

func (t *Table) dropIndex(name string) error {
	key := strings.ToLower(name)
	if _, ok := t.indexes[key]; !ok {
		return fmt.Errorf("relational: no index %s on table %s", name, t.schema.Name)
	}
	delete(t.indexes, key)
	return nil
}

// IndexNames lists the table's secondary indexes, sorted.
func (t *Table) IndexNames() []string {
	names := make([]string, 0, len(t.indexes))
	for _, ix := range t.indexes {
		names = append(names, ix.Name)
	}
	sort.Strings(names)
	return names
}
