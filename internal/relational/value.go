// Package relational implements a complete in-memory relational database
// engine: SQL lexer/parser, catalog, B-tree and hash indexes, a rule-based
// planner, a Volcano-style iterator executor, and transactions with undo
// logging. The engine is instantiated several times with different vendor
// dialect profiles to stand in for the paper's Oracle, mSQL, DB2 and Sybase
// back ends.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// ColType enumerates column types.
type ColType byte

// Column types.
const (
	TypeInt ColType = iota
	TypeFloat
	TypeText
	TypeBool
	TypeDate // stored canonically as "YYYY-MM-DD"
)

func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	case TypeDate:
		return "DATE"
	}
	return fmt.Sprintf("ColType(%d)", byte(t))
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	Kind  ColType
	Null  bool
	Int   int64
	Float float64
	Str   string // TEXT and DATE payloads
	Bool  bool
}

// Constructors.

// NullValue returns the SQL NULL.
func NullValue() Value { return Value{Null: true} }

// IntValue wraps an integer.
func IntValue(v int64) Value { return Value{Kind: TypeInt, Int: v} }

// FloatValue wraps a float.
func FloatValue(v float64) Value { return Value{Kind: TypeFloat, Float: v} }

// TextValue wraps a string.
func TextValue(v string) Value { return Value{Kind: TypeText, Str: v} }

// BoolValue wraps a boolean.
func BoolValue(v bool) Value { return Value{Kind: TypeBool, Bool: v} }

// DateValue wraps a canonical "YYYY-MM-DD" date string.
func DateValue(v string) Value { return Value{Kind: TypeDate, Str: v} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Null }

// String renders the value for result display.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case TypeText, TypeDate:
		return v.Str
	case TypeBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// AsFloat coerces a numeric value to float64.
func (v Value) AsFloat() (float64, bool) {
	if v.Null {
		return 0, false
	}
	switch v.Kind {
	case TypeInt:
		return float64(v.Int), true
	case TypeFloat:
		return v.Float, true
	}
	return 0, false
}

// Truthy reports the three-valued-logic truth of the value: (true, valid)
// for TRUE, (false, valid) for FALSE, valid=false for NULL/UNKNOWN.
func (v Value) Truthy() (bool, bool) {
	if v.Null {
		return false, false
	}
	switch v.Kind {
	case TypeBool:
		return v.Bool, true
	case TypeInt:
		return v.Int != 0, true
	case TypeFloat:
		return v.Float != 0, true
	}
	return false, false
}

// Compare orders two values: -1, 0, +1. NULLs compare less than everything
// and equal to each other (this ordering is used by ORDER BY and index keys;
// SQL comparison predicates handle NULL separately). Numeric kinds compare
// numerically across Int/Float; other cross-kind comparisons compare by the
// rendered string, which keeps the ordering total.
func Compare(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if isNumeric(a.Kind) && isNumeric(b.Kind) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind == b.Kind {
		switch a.Kind {
		case TypeText, TypeDate:
			return strings.Compare(a.Str, b.Str)
		case TypeBool:
			switch {
			case a.Bool == b.Bool:
				return 0
			case !a.Bool:
				return -1
			default:
				return 1
			}
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Equal reports SQL equality (NULL equal to nothing; used after NULL checks).
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	return Compare(a, b) == 0
}

func isNumeric(t ColType) bool { return t == TypeInt || t == TypeFloat }

// Coerce converts v for storage in a column of type t, applying the implicit
// conversions a permissive engine allows (int<->float, string to date).
func Coerce(v Value, t ColType) (Value, error) {
	if v.Null {
		return NullValue(), nil
	}
	if v.Kind == t {
		return v, nil
	}
	switch t {
	case TypeInt:
		if v.Kind == TypeFloat {
			return IntValue(int64(v.Float)), nil
		}
		if v.Kind == TypeText {
			n, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
			if err == nil {
				return IntValue(n), nil
			}
		}
	case TypeFloat:
		if v.Kind == TypeInt {
			return FloatValue(float64(v.Int)), nil
		}
		if v.Kind == TypeText {
			f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
			if err == nil {
				return FloatValue(f), nil
			}
		}
	case TypeText:
		return TextValue(v.String()), nil
	case TypeDate:
		if v.Kind == TypeText {
			if err := checkDate(v.Str); err != nil {
				return Value{}, err
			}
			return DateValue(v.Str), nil
		}
	case TypeBool:
		if b, ok := v.Truthy(); ok {
			return BoolValue(b), nil
		}
	}
	return Value{}, fmt.Errorf("relational: cannot store %s value %s in %s column", v.Kind, v, t)
}

func checkDate(s string) error {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return fmt.Errorf("relational: malformed date %q (want YYYY-MM-DD)", s)
	}
	for i, c := range s {
		if i == 4 || i == 7 {
			continue
		}
		if c < '0' || c > '9' {
			return fmt.Errorf("relational: malformed date %q (want YYYY-MM-DD)", s)
		}
	}
	return nil
}

// Row is one tuple. Rows are copied on the way in and out of tables so
// callers can never alias storage.
type Row []Value

// Clone deep-copies a row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// key renders a row prefix as a comparable map key for hash indexes and
// DISTINCT/GROUP BY buckets.
func encodeKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		if v.Null {
			b.WriteString("\x00N|")
			continue
		}
		b.WriteByte(byte(v.Kind) + '0')
		b.WriteString(v.String())
		b.WriteByte('|')
	}
	return b.String()
}
