// Package simnet is a deterministic, in-memory network for testing the
// reproduction's ORB federation: net.Conn/net.Listener implementations with
// no OS sockets, host-pair partitions and blackholes, per-link latency, and
// a virtual clock so injected delays are simulated-time events instead of
// wall-clock stalls. It plugs into the ORB through the orb.Transport seam
// (Options.Transport) and composes with the ORB's own FaultPlan rules: a
// fault latency of two seconds resolves in microseconds of wall time while
// still advancing the virtual clock by two seconds.
//
// Determinism model: simnet is not a single-threaded event-loop simulator —
// goroutines still run under the Go scheduler — but every source of
// simulated nondeterminism is seeded or ordered: virtual timers fire in
// strict (deadline, creation-sequence) order, per-direction message delivery
// is FIFO even under latency, and partitions take effect synchronously. A
// serial workload over simnet (internal/simtest) is therefore replayable:
// the same seed produces the same event order and the same verdicts.
package simnet

import (
	"container/heap"
	"sync"
	"time"
)

// simEpoch is the virtual time origin: fixed, so runs are comparable and no
// wall-clock reading leaks into simulated time.
var simEpoch = time.Unix(1_000_000_000, 0).UTC()

// Clock is a virtual clock. Time only moves when Advance (or the owning
// Net's idle auto-advancer) moves it; Sleep and AfterFunc schedule against
// virtual deadlines. Timers with equal deadlines fire in creation order.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers timerHeap
}

// NewClock returns a virtual clock starting at the fixed simulation epoch.
func NewClock() *Clock {
	return &Clock{now: simEpoch}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Elapsed returns how much virtual time has passed since the epoch.
func (c *Clock) Elapsed() time.Duration {
	return c.Now().Sub(simEpoch)
}

// AfterFunc schedules fn to run (in its scheduler's goroutine, without any
// clock lock held) once the virtual clock reaches now+d.
func (c *Clock) AfterFunc(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.seq++
	heap.Push(&c.timers, &timer{at: c.now.Add(d), seq: c.seq, fn: fn})
	c.mu.Unlock()
}

// Sleep blocks the calling goroutine until the virtual clock has advanced by
// d. It returns immediately for non-positive d.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	done := make(chan struct{})
	c.AfterFunc(d, func() { close(done) })
	<-done
}

// Advance moves virtual time forward by d, firing every timer whose deadline
// is reached, in (deadline, creation) order. Timer callbacks run in the
// caller's goroutine with no locks held, so they may schedule new timers;
// newly scheduled timers that land within the advance window fire too.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	target := c.now.Add(d)
	c.advanceToLocked(target)
	c.mu.Unlock()
}

// AdvanceToNext jumps the clock to the earliest pending timer deadline and
// fires it (plus any timers sharing that deadline). It reports whether a
// timer was pending. The Net's auto-advancer calls this when the simulation
// is otherwise idle, so virtual sleeps resolve without wall-clock waits.
func (c *Clock) AdvanceToNext() bool {
	c.mu.Lock()
	if len(c.timers) == 0 {
		c.mu.Unlock()
		return false
	}
	target := c.timers[0].at
	c.advanceToLocked(target)
	c.mu.Unlock()
	return true
}

// PendingTimers reports how many virtual timers are scheduled.
func (c *Clock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// advanceToLocked moves the clock to target, firing due timers in order.
// Called with c.mu held; releases and reacquires it around each callback.
func (c *Clock) advanceToLocked(target time.Time) {
	for len(c.timers) > 0 && !c.timers[0].at.After(target) {
		t := heap.Pop(&c.timers).(*timer)
		if t.at.After(c.now) {
			c.now = t.at
		}
		c.mu.Unlock()
		t.fn()
		c.mu.Lock()
	}
	if target.After(c.now) {
		c.now = target
	}
}

// timer is one scheduled callback; seq breaks deadline ties deterministically
// in creation order.
type timer struct {
	at  time.Time
	seq uint64
	fn  func()
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
