package simnet

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// netCounter gives every Net instance a process-unique host namespace
// ("sim1-", "sim2-", …) so two simulations in one test binary can never
// collide in shared per-process registries (the ORB's colocation map is
// keyed by listen address).
var netCounter atomic.Int64

// linkMode is the state of one host pair.
type linkMode int

const (
	linkUp linkMode = iota
	// linkPartitioned refuses dials and has already reset existing
	// connections: the classic hard partition.
	linkPartitioned
	// linkBlackhole accepts dials and silently swallows every byte in both
	// directions: the lost-datagram failure, only recoverable by deadline.
	linkBlackhole
)

// Stats are simnet's transport counters. Tests use Dials > 0 together with
// the unresolvable "simN-…" host namespace as the structural guard that a
// scenario ran entirely in memory: a real TCP dial to such a host cannot
// succeed, so traffic either went through simnet or failed loudly.
type Stats struct {
	Dials     int64 `json:"dials"`
	Refused   int64 `json:"refused"`
	Accepts   int64 `json:"accepts"`
	Resets    int64 `json:"resets"`
	Messages  int64 `json:"messages"`
	Bytes     int64 `json:"bytes"`
	Swallowed int64 `json:"swallowed"` // writes dropped by a blackhole
}

// Net is one simulated network: a namespace of hosts, their listeners and
// live connections, the link-state table, and the virtual clock.
type Net struct {
	prefix string
	seed   int64
	clock  *Clock

	mu        sync.Mutex
	listeners map[string]*listener // "host:port" -> listener
	conns     map[*conn]struct{}   // dial-side endpoint of every live pair
	hosts     map[string]bool      // every host handed out by Endpoint
	links     map[[2]string]linkMode
	latency   map[[2]string]time.Duration
	defLat    time.Duration
	nextPort  int
	nextEphem int
	closed    bool

	dials     atomic.Int64
	refused   atomic.Int64
	accepts   atomic.Int64
	resets    atomic.Int64
	messages  atomic.Int64
	bytes     atomic.Int64
	swallowed atomic.Int64

	done chan struct{}
}

// New creates a simulated network. The seed is recorded for replay banners;
// simnet itself is deterministic by construction (ordered timers, FIFO
// links), while seeded randomness lives in the layers above (fault plans,
// topology and workload generators).
func New(seed int64) *Net {
	n := &Net{
		prefix:    fmt.Sprintf("sim%d", netCounter.Add(1)),
		seed:      seed,
		clock:     NewClock(),
		listeners: make(map[string]*listener),
		conns:     make(map[*conn]struct{}),
		hosts:     make(map[string]bool),
		links:     make(map[[2]string]linkMode),
		latency:   make(map[[2]string]time.Duration),
		nextPort:  1,
		nextEphem: 40000,
		done:      make(chan struct{}),
	}
	go n.autoAdvance()
	return n
}

// Seed returns the seed the network was created with.
func (n *Net) Seed() int64 { return n.seed }

// Clock returns the network's virtual clock.
func (n *Net) Clock() *Clock { return n.clock }

// Stats returns a snapshot of the transport counters.
func (n *Net) Stats() Stats {
	return Stats{
		Dials:     n.dials.Load(),
		Refused:   n.refused.Load(),
		Accepts:   n.accepts.Load(),
		Resets:    n.resets.Load(),
		Messages:  n.messages.Load(),
		Bytes:     n.bytes.Load(),
		Swallowed: n.swallowed.Load(),
	}
}

// Close shuts the network down: listeners stop accepting, every live
// connection is reset, and the idle auto-advancer stops.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	lns := make([]*listener, 0, len(n.listeners))
	for _, ln := range n.listeners {
		lns = append(lns, ln)
	}
	conns := make([]*conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	close(n.done)
	for _, ln := range lns {
		ln.close()
	}
	for _, c := range conns {
		c.reset()
		c.peer.reset()
	}
}

// autoAdvance releases virtual-time sleepers while the simulation is
// otherwise idle: whenever a short wall-clock poll finds pending virtual
// timers, the clock jumps to the earliest deadline. This is what makes a
// two-second injected latency cost microseconds of wall time.
func (n *Net) autoAdvance() {
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
			n.clock.AdvanceToNext()
		}
	}
}

// Endpoint registers (or returns) the transport endpoint of one simulated
// host. The short name is namespaced per Net ("n0" -> "sim3-n0") so host
// addresses are process-unique and — deliberately — unresolvable by the real
// TCP stack. The returned Endpoint implements orb.Transport and, through
// Sleep, orb.Sleeper, pinning the ORB's fault-latency sleeps to the virtual
// clock.
func (n *Net) Endpoint(host string) *Endpoint {
	full := n.prefix + "-" + host
	n.mu.Lock()
	n.hosts[full] = true
	n.mu.Unlock()
	return &Endpoint{net: n, host: full}
}

// pairKey orders a host pair into a canonical map key.
func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// mode returns the link state between two hosts. A host always reaches
// itself.
func (n *Net) mode(a, b string) linkMode {
	if a == b {
		return linkUp
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.links[pairKey(a, b)]
}

// linkLatency returns the one-way delivery latency between two hosts.
func (n *Net) linkLatency(a, b string) time.Duration {
	if a == b {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if d, ok := n.latency[pairKey(a, b)]; ok {
		return d
	}
	return n.defLat
}

// SetLinkLatency sets the one-way delivery latency between two hosts
// (virtual time; FIFO order per direction is preserved).
func (n *Net) SetLinkLatency(a, b string, d time.Duration) {
	n.mu.Lock()
	n.latency[pairKey(a, b)] = d
	n.mu.Unlock()
}

// SetDefaultLatency sets the latency of every link without an explicit
// SetLinkLatency override.
func (n *Net) SetDefaultLatency(d time.Duration) {
	n.mu.Lock()
	n.defLat = d
	n.mu.Unlock()
}

// Partition cuts the link between two hosts: future dials are refused and
// every established connection between them is reset immediately (in-flight
// calls fail now, deterministically, rather than via timers).
func (n *Net) Partition(a, b string) {
	n.setMode(a, b, linkPartitioned)
	n.resetBetween(a, b)
}

// Blackhole silently swallows all traffic between two hosts in both
// directions. Dials still "succeed" and existing connections stay up, but
// nothing is delivered until Heal — the failure only a deadline detects.
func (n *Net) Blackhole(a, b string) {
	n.setMode(a, b, linkBlackhole)
}

// Heal restores the link between two hosts.
func (n *Net) Heal(a, b string) {
	n.setMode(a, b, linkUp)
}

// HealAll restores every link.
func (n *Net) HealAll() {
	n.mu.Lock()
	n.links = make(map[[2]string]linkMode)
	n.mu.Unlock()
}

// Isolate partitions a host from every other host registered on the
// network.
func (n *Net) Isolate(host string) {
	n.mu.Lock()
	others := make([]string, 0, len(n.hosts))
	for h := range n.hosts {
		if h != host {
			others = append(others, h)
		}
	}
	n.mu.Unlock()
	for _, o := range others {
		n.Partition(host, o)
	}
}

// Rejoin undoes Isolate.
func (n *Net) Rejoin(host string) {
	n.mu.Lock()
	others := make([]string, 0, len(n.hosts))
	for h := range n.hosts {
		if h != host {
			others = append(others, h)
		}
	}
	n.mu.Unlock()
	for _, o := range others {
		n.Heal(host, o)
	}
}

func (n *Net) setMode(a, b string, m linkMode) {
	n.mu.Lock()
	if m == linkUp {
		delete(n.links, pairKey(a, b))
	} else {
		n.links[pairKey(a, b)] = m
	}
	n.mu.Unlock()
}

// resetBetween tears down every live connection whose two ends sit on the
// given host pair.
func (n *Net) resetBetween(a, b string) {
	key := pairKey(a, b)
	n.mu.Lock()
	var victims []*conn
	for c := range n.conns {
		if pairKey(c.local.host, c.remote.host) == key {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		n.resets.Add(1)
		c.reset()
		c.peer.reset()
	}
}

func (n *Net) removeConn(c *conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// Endpoint is the per-host transport handle: it implements orb.Transport
// (Listen + DialTimeout) and orb.Sleeper (virtual-clock Sleep).
type Endpoint struct {
	net  *Net
	host string
}

// Host returns the endpoint's full (namespaced) host name — the host part
// of every address its listeners report.
func (e *Endpoint) Host() string { return e.host }

// Sleep blocks for d of virtual time (orb.Sleeper).
func (e *Endpoint) Sleep(d time.Duration) { e.net.clock.Sleep(d) }

// Listen binds a listener on this endpoint's host. The host part of addr is
// ignored — a simulated endpoint can only bind its own host, which also lets
// code written for "127.0.0.1:0" run unchanged over simnet — and port 0
// auto-assigns the next free port.
func (e *Endpoint) Listen(addr string) (net.Listener, error) {
	_, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("simnet: listen %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 0 || port > 65535 {
		return nil, fmt.Errorf("simnet: listen %q: bad port", addr)
	}
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, net.ErrClosed
	}
	if port == 0 {
		port = n.nextPort
		n.nextPort++
	}
	a := simAddr{host: e.host, port: port}
	if _, dup := n.listeners[a.String()]; dup {
		return nil, fmt.Errorf("simnet: listen %s: address in use", a)
	}
	ln := &listener{net: n, addr: a}
	ln.cond = sync.NewCond(&ln.mu)
	n.listeners[a.String()] = ln
	return ln, nil
}

// DialTimeout connects from this endpoint's host to a simulated address.
// Dials resolve synchronously (refused or connected; the timeout is unused),
// so failure injection at this layer comes from partitions and the ORB's own
// FaultPlan rather than wall-clock waits.
func (e *Endpoint) DialTimeout(addr string, timeout time.Duration) (net.Conn, error) {
	n := e.net
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("simnet: dial %q: %w", addr, err)
	}
	n.dials.Add(1)
	if n.mode(e.host, host) == linkPartitioned {
		n.refused.Add(1)
		return nil, fmt.Errorf("simnet: dial %s from %s: network partitioned", addr, e.host)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, net.ErrClosed
	}
	ln := n.listeners[addr]
	ephem := n.nextEphem
	n.nextEphem++
	n.mu.Unlock()
	if ln == nil {
		n.refused.Add(1)
		return nil, fmt.Errorf("simnet: dial %s from %s: connection refused", addr, e.host)
	}

	client := newConn(n, simAddr{host: e.host, port: ephem}, ln.addr)
	server := newConn(n, ln.addr, client.local)
	client.peer, server.peer = server, client

	n.mu.Lock()
	n.conns[client] = struct{}{}
	n.mu.Unlock()

	if !ln.enqueue(server) {
		n.removeConn(client)
		n.refused.Add(1)
		return nil, fmt.Errorf("simnet: dial %s from %s: connection refused", addr, e.host)
	}
	n.accepts.Add(1)
	return client, nil
}

// simAddr is a simulated network address.
type simAddr struct {
	host string
	port int
}

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return net.JoinHostPort(a.host, strconv.Itoa(a.port)) }

// listener is the accept queue of one bound simulated address.
type listener struct {
	net  *Net
	addr simAddr

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*conn
	closed bool
}

// enqueue hands a freshly dialed server-side conn to Accept; it reports
// false if the listener is already closed.
func (l *listener) enqueue(c *conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.queue = append(l.queue, c)
	l.cond.Signal()
	return true
}

func (l *listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, net.ErrClosed
	}
	c := l.queue[0]
	l.queue = l.queue[1:]
	return c, nil
}

func (l *listener) Close() error {
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr.String())
	l.net.mu.Unlock()
	l.close()
	return nil
}

func (l *listener) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

func (l *listener) Addr() net.Addr { return l.addr }

// errReset is returned by I/O on a connection torn down by a partition or
// network shutdown. It wraps net.ErrClosed so the ORB's server loop treats
// it as a close rather than a protocol error, while clients fail their
// in-flight calls with COMM_FAILURE either way.
var errReset = fmt.Errorf("simnet: connection reset by partition: %w", net.ErrClosed)

// conn is one direction-pair endpoint of a simulated connection. Each
// endpoint owns its inbound buffer; writes append to the peer's buffer
// (synchronously on zero-latency links, via virtual timers otherwise, FIFO
// either way).
type conn struct {
	net    *Net
	local  simAddr
	remote simAddr
	peer   *conn

	mu         sync.Mutex
	cond       *sync.Cond
	buf        bytes.Buffer
	inflight   int // deliveries scheduled on the clock but not yet appended
	lastAt     time.Time
	closed     bool
	peerClosed bool
	resetted   bool
	deadline   time.Time
	dtimer     *time.Timer

	closeOnce sync.Once
}

func newConn(n *Net, local, remote simAddr) *conn {
	c := &conn{net: n, local: local, remote: remote}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.resetted {
			return 0, errReset
		}
		if c.closed {
			return 0, net.ErrClosed
		}
		if c.buf.Len() > 0 {
			n, _ := c.buf.Read(p)
			return n, nil
		}
		if c.peerClosed && c.inflight == 0 {
			return 0, io.EOF
		}
		if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		c.cond.Wait()
	}
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.resetted {
		c.mu.Unlock()
		return 0, errReset
	}
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.mu.Unlock()

	switch c.net.mode(c.local.host, c.remote.host) {
	case linkBlackhole:
		c.net.swallowed.Add(1)
		return len(p), nil
	case linkPartitioned:
		// The partition reset races the write; behave as the reset.
		return 0, errReset
	}

	peer := c.peer
	peer.mu.Lock()
	if peer.closed || peer.resetted {
		peer.mu.Unlock()
		return 0, fmt.Errorf("simnet: write %s->%s: broken pipe", c.local, c.remote)
	}
	lat := c.net.linkLatency(c.local.host, c.remote.host)
	if lat == 0 && peer.inflight == 0 {
		peer.buf.Write(p)
		peer.cond.Broadcast()
		peer.mu.Unlock()
	} else {
		// Preserve FIFO: never deliver earlier than the previously
		// scheduled delivery, even if the latency was lowered meanwhile.
		now := c.net.clock.Now()
		at := now.Add(lat)
		if at.Before(peer.lastAt) {
			at = peer.lastAt
		}
		peer.lastAt = at
		peer.inflight++
		data := append([]byte(nil), p...)
		peer.mu.Unlock()
		c.net.clock.AfterFunc(at.Sub(now), func() {
			peer.mu.Lock()
			peer.inflight--
			if !peer.closed && !peer.resetted {
				peer.buf.Write(data)
			}
			peer.cond.Broadcast()
			peer.mu.Unlock()
		})
	}
	c.net.messages.Add(1)
	c.net.bytes.Add(int64(len(p)))
	return len(p), nil
}

// Close closes this endpoint: local reads fail immediately, the peer drains
// its buffer and then reads io.EOF (matching TCP FIN semantics closely
// enough for the ORB's clean-shutdown paths).
func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.cond.Broadcast()
		c.mu.Unlock()
		p := c.peer
		p.mu.Lock()
		p.peerClosed = true
		p.cond.Broadcast()
		p.mu.Unlock()
		c.net.removeConn(c)
		c.net.removeConn(p)
	})
	return nil
}

// reset hard-kills this endpoint (partition/shutdown): pending buffered data
// is discarded and all I/O fails with errReset.
func (c *conn) reset() {
	c.mu.Lock()
	c.resetted = true
	c.buf.Reset()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.net.removeConn(c)
}

func (c *conn) SetDeadline(t time.Time) error {
	return c.SetReadDeadline(t)
}

// SetReadDeadline bounds blocked Reads with a wall-clock deadline (the ORB
// itself bounds calls with its own timers; this exists for net.Conn
// completeness).
func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadline = t
	if c.dtimer != nil {
		c.dtimer.Stop()
		c.dtimer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		c.dtimer = time.AfterFunc(d, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
	}
	return nil
}

// SetWriteDeadline is a no-op: simulated writes never block.
func (c *conn) SetWriteDeadline(t time.Time) error { return nil }

// HostOf extracts the host part of a "host:port" address, for wiring
// partition calls from ORB addresses.
func HostOf(addr string) string {
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[:i]
	}
	return addr
}
