package simnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestClockTimerOrder(t *testing.T) {
	c := NewClock()
	var mu sync.Mutex
	var fired []string
	add := func(name string, d time.Duration) {
		c.AfterFunc(d, func() {
			mu.Lock()
			fired = append(fired, name)
			mu.Unlock()
		})
	}
	add("b", 20*time.Millisecond)
	add("a", 10*time.Millisecond)
	add("a2", 10*time.Millisecond) // same deadline as a: creation order wins
	add("c", 30*time.Millisecond)
	c.Advance(25 * time.Millisecond)
	mu.Lock()
	got := append([]string(nil), fired...)
	mu.Unlock()
	want := []string{"a", "a2", "b"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if c.PendingTimers() != 1 {
		t.Fatalf("pending = %d, want 1", c.PendingTimers())
	}
	if c.Elapsed() != 25*time.Millisecond {
		t.Fatalf("elapsed = %v", c.Elapsed())
	}
}

func TestClockSleepViaAutoAdvance(t *testing.T) {
	n := New(1)
	defer n.Close()
	start := time.Now()
	n.Clock().Sleep(5 * time.Second) // virtual
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("virtual sleep took %v of wall time", wall)
	}
	if n.Clock().Elapsed() < 5*time.Second {
		t.Fatalf("clock advanced only %v", n.Clock().Elapsed())
	}
}

func TestConnRoundTripAndEOF(t *testing.T) {
	n := New(1)
	defer n.Close()
	ep1, ep2 := n.Endpoint("a"), n.Endpoint("b")
	ln, err := ep1.Listen("ignored:0")
	if err != nil {
		t.Fatal(err)
	}
	if HostOf(ln.Addr().String()) != ep1.Host() {
		t.Fatalf("listener host %s, want %s", ln.Addr(), ep1.Host())
	}

	type acc struct {
		c   net.Conn
		err error
	}
	accCh := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		accCh <- acc{c, err}
	}()

	cli, err := ep2.DialTimeout(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a := <-accCh
	if a.err != nil {
		t.Fatal(a.err)
	}
	srv := a.c

	if _, err := cli.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nn, err := srv.Read(buf)
	if err != nil || string(buf[:nn]) != "ping" {
		t.Fatalf("server read %q, %v", buf[:nn], err)
	}
	if _, err := srv.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	nn, err = cli.Read(buf)
	if err != nil || string(buf[:nn]) != "pong" {
		t.Fatalf("client read %q, %v", buf[:nn], err)
	}

	// Close with data still buffered: the peer drains, then sees EOF.
	if _, err := srv.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	nn, err = cli.Read(buf)
	if err != nil || string(buf[:nn]) != "bye" {
		t.Fatalf("drain read %q, %v", buf[:nn], err)
	}
	if _, err = cli.Read(buf); err != io.EOF {
		t.Fatalf("after close: %v, want io.EOF", err)
	}
	if _, err := cli.Read(buf); err != io.EOF {
		t.Fatalf("EOF not sticky: %v", err)
	}
	st := n.Stats()
	if st.Dials != 1 || st.Accepts != 1 || st.Messages != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDialRefusedCases(t *testing.T) {
	n := New(1)
	defer n.Close()
	ep := n.Endpoint("a")
	if _, err := ep.DialTimeout(n.prefix+"-nowhere:5", time.Second); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
	if n.Stats().Refused != 1 {
		t.Fatalf("refused = %d", n.Stats().Refused)
	}
}

func TestPartitionRefusesAndResets(t *testing.T) {
	n := New(1)
	defer n.Close()
	epA, epB := n.Endpoint("a"), n.Endpoint("b")
	ln, _ := epA.Listen(":0")
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()
	cli, err := epB.DialTimeout(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cli.Write([]byte("x"))
	buf := make([]byte, 4)
	if _, err := cli.Read(buf); err != nil {
		t.Fatal(err)
	}

	n.Partition(epA.Host(), epB.Host())
	if _, err := cli.Read(buf); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read on partitioned conn: %v, want reset wrapping net.ErrClosed", err)
	}
	if _, err := epB.DialTimeout(ln.Addr().String(), time.Second); err == nil {
		t.Fatal("dial across partition succeeded")
	}

	n.Heal(epA.Host(), epB.Host())
	cli2, err := epB.DialTimeout(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	cli2.Write([]byte("y"))
	if _, err := cli2.Read(buf); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
}

func TestBlackholeSwallowsUntilHeal(t *testing.T) {
	n := New(1)
	defer n.Close()
	epA, epB := n.Endpoint("a"), n.Endpoint("b")
	ln, _ := epA.Listen(":0")
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	cli, err := epB.DialTimeout(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	n.Blackhole(epA.Host(), epB.Host())
	if _, err := cli.Write([]byte("lost")); err != nil {
		t.Fatalf("blackholed write errored: %v", err)
	}
	cli.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := cli.Read(make([]byte, 4)); err == nil {
		t.Fatal("read returned data across a blackhole")
	}
	if n.Stats().Swallowed == 0 {
		t.Fatal("no writes recorded as swallowed")
	}
	cli.SetReadDeadline(time.Time{})
	n.Heal(epA.Host(), epB.Host())
	if _, err := cli.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if nn, err := cli.Read(buf); err != nil || string(buf[:nn]) != "back" {
		t.Fatalf("echo after heal: %q, %v", buf[:nn], err)
	}
}

func TestLinkLatencyIsVirtualAndFIFO(t *testing.T) {
	n := New(1)
	defer n.Close()
	epA, epB := n.Endpoint("a"), n.Endpoint("b")
	n.SetLinkLatency(epA.Host(), epB.Host(), 500*time.Millisecond)
	ln, _ := epA.Listen(":0")
	got := make(chan string, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		total := 0
		for total < 6 {
			nn, err := c.Read(buf[total:])
			if err != nil {
				return
			}
			total += nn
		}
		got <- string(buf[:total])
	}()
	cli, err := epB.DialTimeout(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	cli.Write([]byte("one"))
	cli.Write([]byte("two"))
	select {
	case s := <-got:
		if s != "onetwo" {
			t.Fatalf("out-of-order delivery: %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("latency delivery never arrived")
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("virtual latency burned %v wall time", wall)
	}
	if n.Clock().Elapsed() < 500*time.Millisecond {
		t.Fatalf("clock advanced only %v", n.Clock().Elapsed())
	}
}

func TestListenerPortAssignmentAndDuplicates(t *testing.T) {
	n := New(1)
	defer n.Close()
	ep := n.Endpoint("a")
	ln1, err := ep.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := ep.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	if ln1.Addr().String() == ln2.Addr().String() {
		t.Fatalf("duplicate auto-assigned address %s", ln1.Addr())
	}
	if _, err := ep.Listen(":" + ln1.Addr().String()[len(ln1.Addr().String())-1:]); err == nil {
		// port of ln1 is single-digit in a fresh net ("1")
		t.Fatal("duplicate bind succeeded")
	}
	ln1.Close()
	if _, err := ln1.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("accept after close: %v", err)
	}
}

func TestIsolateCutsAllLinks(t *testing.T) {
	n := New(1)
	defer n.Close()
	a, b, c := n.Endpoint("a"), n.Endpoint("b"), n.Endpoint("c")
	lnB, _ := b.Listen(":0")
	lnC, _ := c.Listen(":0")
	n.Isolate(a.Host())
	if _, err := a.DialTimeout(lnB.Addr().String(), time.Second); err == nil {
		t.Fatal("isolated host dialed b")
	}
	if _, err := a.DialTimeout(lnC.Addr().String(), time.Second); err == nil {
		t.Fatal("isolated host dialed c")
	}
	if _, err := b.DialTimeout(lnC.Addr().String(), time.Second); err != nil {
		t.Fatalf("unrelated link broken: %v", err)
	}
	n.Rejoin(a.Host())
	if _, err := a.DialTimeout(lnB.Addr().String(), time.Second); err != nil {
		t.Fatalf("rejoin did not heal: %v", err)
	}
}
