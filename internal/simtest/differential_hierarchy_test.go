package simtest

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/query"
)

// The differential hierarchy suite: the same heterogeneous federation is
// built twice from the same seed — once with hierarchical discovery routing
// on (shard size 1, the most aggressive setting: every coalition group with
// two or more peers relays through representatives, whatever subset of
// coalitions the seed dealt the coordinator), once with it disabled (the
// paper's flat fan-out) — and
// both run an identical workload. Routing may only change who carries the
// probe RPCs, never the answer: rows, columns, Partial flag, per-member
// error classes and staleness, discovery leads and instance listings must
// match exactly, across the seed matrix, coalition queries, peer sweeps, a
// fully-partitioned member (which in the hierarchical half is also a dead
// shard representative) and the healed federation afterwards.

// hierFindWorkload is the discovery side of the workload: peer sweeps that
// drive stage-3 routing (distinct unknown topics dodge the probe cache, so
// every sweep exercises routing afresh) plus lookups flat stages answer.
var hierFindWorkload = []string{
	"Find Coalitions With Information zzzsweep1;",
	"Find Coalitions With Information zzzsweep2;",
	"Find Coalitions With Information c0;",
	"Display Instances of Class " + BaseCoalition + ";",
}

// buildHierFed builds one half of a routing differential pair.
func buildHierFed(t *testing.T, seed int64, sub int) *Fed {
	t.Helper()
	fed, err := Build(Config{
		Seed:             seed,
		Hetero:           true,
		RowsPerNode:      diffRows,
		SubCoalitionSize: sub,
	})
	if err != nil {
		t.Fatalf("build (sub=%d): %v\n%s", sub, err, ReplayLine(seed))
	}
	return fed
}

// TestDifferentialHierarchy runs the PR-7 pushdown workload plus the
// discovery sweeps over the seed matrix, healthy and with a fully
// partitioned member, and requires identical outcomes from hierarchical and
// flat routing — while proving the hierarchical half actually relayed
// (RelayShards > 0) and the flat half never did.
func TestDifferentialHierarchy(t *testing.T) {
	for _, seed := range seedsUnderTest() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			hier := buildHierFed(t, seed, 1)
			defer hier.Close()
			flat := buildHierFed(t, seed, -1)
			defer flat.Close()
			ctx := context.Background()
			// Two gossip rounds warm both failure detectors and stores, so
			// representative election runs on real liveness data.
			for r := 0; r < 2; r++ {
				hier.RunGossipRound(ctx)
				flat.RunGossipRound(ctx)
			}

			runBoth := func(stmt string) *query.Response {
				t.Helper()
				rh, err := hier.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("hierarchical %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				rf, err := flat.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("flat %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				if a, b := hierOutcomeOf(rh), hierOutcomeOf(rf); a != b {
					t.Fatalf("routing modes diverge on %q:\n  hier: %s\n  flat: %s\n%s",
						stmt, a, b, ReplayLine(seed))
				}
				return rh
			}

			for _, stmt := range diffWorkload {
				runBoth(stmt)
			}
			for _, stmt := range hierFindWorkload {
				runBoth(stmt)
			}

			// A fully partitioned member: unreachable from the coordinator
			// and from every would-be representative alike, so both modes
			// must report the same degraded accounting. In the hierarchical
			// half this also kills whatever shard representative N2 was.
			for j := 0; j < len(hier.Nodes); j++ {
				if j != 2 {
					hier.Partition(2, j)
					flat.Partition(2, j)
				}
			}
			rh := runBoth("Find Coalitions With Information zzzdead;")
			found := false
			for _, m := range rh.Members {
				if m.Member == "N2" && m.ErrClass == "comm" {
					found = true
				}
			}
			if !found || !rh.Partial {
				t.Fatalf("partitioned member not accounted: partial=%v members=%+v\n%s",
					rh.Partial, rh.Members, ReplayLine(seed))
			}
			runBoth(diffWorkload[0])

			hier.HealAll()
			flat.HealAll()
			if rh := runBoth("Find Coalitions With Information zzzhealed;"); rh.Partial {
				t.Fatalf("healed sweep still partial: %+v\n%s", rh.Members, ReplayLine(seed))
			}

			// The equivalence must not be vacuous: the hierarchical half
			// relayed real shards, the flat half relayed nothing.
			sh := hier.Nodes[0].Core.Processor.PlannerStats()
			sf := flat.Nodes[0].Core.Processor.PlannerStats()
			if sh.RelayShards == 0 || sh.RelayedProbes == 0 {
				t.Fatalf("hierarchical mode never relayed: %+v\n%s", sh, ReplayLine(seed))
			}
			if sf.RelayShards != 0 || sf.RelayedProbes != 0 {
				t.Fatalf("flat mode relayed %d shards: %+v\n%s", sf.RelayShards, sf, ReplayLine(seed))
			}
		})
	}
}
