package simtest

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/query"
)

// The differential streaming suite: the same heterogeneous federation is
// built twice from the same seed — once with the member cursor protocol on
// (coalition sub-queries page through server-side cursors), once with it off
// (whole results in one round trip) — and both run an identical workload.
// The transport may only change how rows cross the wire, never the answer:
// rows, columns, the Partial flag and per-member error classes must match
// exactly, including under a mid-stream member death and a top-K early
// termination that cancels open cursors.

// buildStreamFed builds one half of a streaming differential pair. A small
// merge window forces multi-fetch cursor traffic even on the small fixture.
func buildStreamFed(t *testing.T, seed int64, disableStreaming bool) *Fed {
	t.Helper()
	fed, err := Build(Config{
		Seed:             seed,
		Hetero:           true,
		RowsPerNode:      diffRows,
		DisableStreaming: disableStreaming,
		MergeBufRows:     2,
	})
	if err != nil {
		t.Fatalf("build (streaming off=%v): %v\n%s", disableStreaming, err, ReplayLine(seed))
	}
	return fed
}

// noCursorsLeaked asserts every node's servants released their cursors.
func noCursorsLeaked(t *testing.T, fed *Fed, when string, seed int64) {
	t.Helper()
	for _, n := range fed.Nodes {
		if st := n.Core.CursorStats(); st.Open != 0 {
			t.Fatalf("%s: node %s still holds %d open cursor(s)\n%s",
				when, n.Name, st.Open, ReplayLine(seed))
		}
	}
}

// TestDifferentialStreaming runs the workload over the seed matrix, healthy
// and under a partition, and requires byte-identical outcomes from both
// transports — while proving the streamed half actually paged through
// cursors and left none open.
func TestDifferentialStreaming(t *testing.T) {
	for _, seed := range seedsUnderTest() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			on := buildStreamFed(t, seed, false)
			defer on.Close()
			off := buildStreamFed(t, seed, true)
			defer off.Close()

			ctx := context.Background()
			runBoth := func(stmt string) (*query.Response, *query.Response) {
				t.Helper()
				ron, err := on.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("streaming-on %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				roff, err := off.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("streaming-off %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				if a, b := outcomeOf(ron), outcomeOf(roff); a != b {
					t.Fatalf("transports diverge on %q:\n  cursor      : %+v\n  materialized: %+v\n%s",
						stmt, a, b, ReplayLine(seed))
				}
				return ron, roff
			}

			for _, stmt := range diffWorkload {
				runBoth(stmt)
			}
			// Top-K early termination cancels the cursors it abandons; a full
			// drain exhausts them. Either way nothing stays open.
			noCursorsLeaked(t, on, "after workload", seed)

			// Mid-stream member death: the link to a member dies while the
			// coalition scan is in flight. Both transports must agree on the
			// degraded accounting — the unreachable member reports "comm" and
			// the result is Partial.
			on.Partition(0, 2)
			off.Partition(0, 2)
			ron, _ := runBoth(diffWorkload[0])
			found := false
			for _, m := range ron.Members {
				if m.Member == "N2" && m.ErrClass == "comm" {
					found = true
				}
			}
			if !found || !ron.Partial {
				t.Fatalf("partitioned member not accounted: partial=%v members=%+v\n%s",
					ron.Partial, ron.Members, ReplayLine(seed))
			}
			on.HealAll()
			off.HealAll()
			noCursorsLeaked(t, on, "after partition run", seed)

			// The equivalence must not be vacuous: the streaming half held
			// real server-side cursors open across fetches (the 2-row window
			// forces paging), the materialized half never retained one —
			// batch-0 whole-result opens keep no server state.
			var openedOn, openedOff int64
			for _, n := range on.Nodes {
				openedOn += n.Core.CursorStats().Opened
			}
			for _, n := range off.Nodes {
				openedOff += n.Core.CursorStats().Opened
			}
			if openedOn == 0 {
				t.Fatalf("streaming-on federation never paged through a cursor\n%s", ReplayLine(seed))
			}
			if openedOff != 0 {
				t.Fatalf("streaming-off federation retained %d cursor(s)\n%s", openedOff, ReplayLine(seed))
			}
		})
	}
}

// TestStreamingTopKClosesCursors pins the cancellation contract: a satisfied
// LIMIT abandons the remaining members' cursors mid-scan, and the merge must
// close every one of them on its way out.
func TestStreamingTopKClosesCursors(t *testing.T) {
	seed := int64(11)
	if s := ReplaySeed(); s != 0 {
		seed = s
	}
	fed := buildStreamFed(t, seed, false)
	defer fed.Close()
	ctx := context.Background()

	topK, err := fed.Nodes[0].Session.Execute(ctx, `V(R.K) On Coalition `+BaseCoalition+` Limit 3;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topK.Result.Rows); got != 3 {
		t.Fatalf("Limit 3 returned %d rows", got)
	}
	if topK.Partial {
		t.Fatalf("limit-satisfied query flagged partial: %+v", topK.Members)
	}
	noCursorsLeaked(t, fed, "after top-K", seed)

	// And the pull contract moved fewer rows than a full scan: the limit
	// stopped the fan-out before the later members were drained.
	full, err := fed.Nodes[0].Session.Execute(ctx, `V(R.K) On Coalition `+BaseCoalition+`;`)
	if err != nil {
		t.Fatal(err)
	}
	if topK.RowsMoved >= full.RowsMoved {
		t.Fatalf("top-K moved %d rows, full scan moved %d — cancellation bought nothing",
			topK.RowsMoved, full.RowsMoved)
	}
}
