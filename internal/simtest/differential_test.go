package simtest

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/query"
)

// The differential pushdown suite: the same heterogeneous federation is
// built twice from the same seed — once with predicate/limit pushdown on,
// once with it off — and both run an identical workload. Pushdown may only
// change WHERE predicates are evaluated and how many rows cross the wire,
// never the answer: rows, columns, Partial flag and per-member error classes
// must match exactly, across engines, seeds, a metadata-drift member whose
// engine rejects pushed clauses mid-query, and partitions.

// diffRows is the per-node row count for the differential federations:
// enough volume for LIMIT to terminate mid-member.
const diffRows = 5

// diffWorkload is the statement list both modes execute from node 0.
var diffWorkload = []string{
	// Equality on the key: fully pushable on every engine.
	`V(R.K, (R.K = "a")) On Coalition ` + BaseCoalition + `;`,
	// Range on the result column: pushable comparison, numeric literal.
	`V(R.V, (R.V >= 2000)) On Coalition ` + BaseCoalition + `;`,
	// LIKE: residual on mSQL (no standard LIKE), pushed elsewhere, and
	// pushed-then-rejected on the drift member that claims Oracle.
	`V(R.K, (R.K LIKE "k0%")) On Coalition ` + BaseCoalition + `;`,
	// Mixed conjunction: LIKE plus a numeric range.
	`V(R.V, (R.K LIKE "k%" AND R.V > 1)) On Coalition ` + BaseCoalition + `;`,
	// Top-K: limit below one member's row count — pushed into fragments
	// where the dialect has LIMIT, early-terminating the fan-out either way.
	`V(R.K) On Coalition ` + BaseCoalition + ` Limit 3;`,
	// Top-K spanning members, with a predicate.
	`V(R.V, (R.V >= 0)) On Coalition ` + BaseCoalition + ` Limit 8;`,
}

// diffOutcome is the mode-independent projection of one response: everything
// that must be identical between pushdown modes.
type diffOutcome struct {
	rows    string
	columns string
	partial bool
	members string // member:errclass pairs, in member order
}

func outcomeOf(resp *query.Response) diffOutcome {
	var rows []string
	for _, row := range resp.Result.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = fmt.Sprintf("%v", c)
		}
		rows = append(rows, strings.Join(cells, "|"))
	}
	var members []string
	for _, m := range resp.Members {
		members = append(members, m.Member+":"+m.ErrClass)
	}
	return diffOutcome{
		rows:    strings.Join(rows, "\n"),
		columns: strings.Join(resp.Result.Columns, ","),
		partial: resp.Partial,
		members: strings.Join(members, " "),
	}
}

// buildDiffFed builds one half of a differential pair.
func buildDiffFed(t *testing.T, seed int64, disablePushdown bool) *Fed {
	t.Helper()
	fed, err := Build(Config{
		Seed:            seed,
		Hetero:          true,
		RowsPerNode:     diffRows,
		DisablePushdown: disablePushdown,
	})
	if err != nil {
		t.Fatalf("build (pushdown off=%v): %v\n%s", disablePushdown, err, ReplayLine(seed))
	}
	return fed
}

// TestDifferentialPushdown runs the workload over the seed matrix, healthy
// and under a partition, and requires byte-identical outcomes from both
// pushdown modes — while proving the two modes actually took different
// paths (fragments pushed vs everything compensated, including a mid-query
// capability rejection on the drift member).
func TestDifferentialPushdown(t *testing.T) {
	for _, seed := range seedsUnderTest() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			on := buildDiffFed(t, seed, false)
			defer on.Close()
			off := buildDiffFed(t, seed, true)
			defer off.Close()

			ctx := context.Background()
			runBoth := func(stmt string) (*query.Response, *query.Response) {
				t.Helper()
				ron, err := on.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("pushdown-on %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				roff, err := off.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("pushdown-off %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				if a, b := outcomeOf(ron), outcomeOf(roff); a != b {
					t.Fatalf("pushdown modes diverge on %q:\n  on : %+v\n  off: %+v\n%s",
						stmt, a, b, ReplayLine(seed))
				}
				return ron, roff
			}

			for _, stmt := range diffWorkload {
				runBoth(stmt)
			}

			// Under a partition the degraded accounting must agree too: the
			// unreachable member reports "comm" in both modes.
			on.Partition(0, 2)
			off.Partition(0, 2)
			ron, _ := runBoth(diffWorkload[0])
			found := false
			for _, m := range ron.Members {
				if m.Member == "N2" && m.ErrClass == "comm" {
					found = true
				}
			}
			if !found || !ron.Partial {
				t.Fatalf("partitioned member not accounted: partial=%v members=%+v\n%s",
					ron.Partial, ron.Members, ReplayLine(seed))
			}
			on.HealAll()
			off.HealAll()

			// The equivalence must not be vacuous: the on-processor pushed
			// real fragments (and survived the drift member's mid-query
			// rejection of a pushed LIKE), the off-processor pushed nothing.
			son := on.Nodes[0].Core.Processor.PlannerStats()
			soff := off.Nodes[0].Core.Processor.PlannerStats()
			if son.FragmentsPushed == 0 {
				t.Fatalf("pushdown-on pushed no fragments\n%s", ReplayLine(seed))
			}
			if son.Fallbacks == 0 {
				t.Fatalf("drift member never rejected a pushed clause (fallback path untested)\n%s", ReplayLine(seed))
			}
			if soff.FragmentsPushed != 0 {
				t.Fatalf("pushdown-off still pushed %d conjuncts\n%s", soff.FragmentsPushed, ReplayLine(seed))
			}
			if son.EarlyTerminations == 0 || soff.EarlyTerminations == 0 {
				t.Fatalf("limit queries never terminated early (on=%d off=%d)\n%s",
					son.EarlyTerminations, soff.EarlyTerminations, ReplayLine(seed))
			}
			// Pushdown's point: strictly fewer rows crossed the wire.
			if son.RowsMoved >= soff.RowsMoved {
				t.Fatalf("pushdown moved %d rows, compensation moved %d — no win\n%s",
					son.RowsMoved, soff.RowsMoved, ReplayLine(seed))
			}
		})
	}
}

// TestDifferentialTopKMovesFewerRows pins the top-K contract on a single
// statement: with a pushable LIMIT the on-mode run must move strictly fewer
// member rows than the same statement without the LIMIT.
func TestDifferentialTopKMovesFewerRows(t *testing.T) {
	seed := int64(11)
	if s := ReplaySeed(); s != 0 {
		seed = s
	}
	fed := buildDiffFed(t, seed, false)
	defer fed.Close()
	ctx := context.Background()

	full, err := fed.Nodes[0].Session.Execute(ctx, `V(R.K) On Coalition `+BaseCoalition+`;`)
	if err != nil {
		t.Fatal(err)
	}
	topK, err := fed.Nodes[0].Session.Execute(ctx, `V(R.K) On Coalition `+BaseCoalition+` Limit 3;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topK.Result.Rows); got != 3 {
		t.Fatalf("Limit 3 returned %d rows", got)
	}
	if topK.RowsMoved >= full.RowsMoved {
		t.Fatalf("top-K moved %d rows, full scan moved %d — early termination bought nothing",
			topK.RowsMoved, full.RowsMoved)
	}
	for _, m := range topK.Members[1:] {
		if m.ErrClass != "limit" {
			t.Fatalf("member %s after satisfied limit has class %q, want \"limit\"", m.Member, m.ErrClass)
		}
	}
	if topK.Partial {
		t.Fatalf("limit-satisfied query flagged partial: %+v", topK.Members)
	}
}
