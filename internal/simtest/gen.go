package simtest

import (
	"fmt"
	"math/rand"
	"sort"
)

// OpKind enumerates generated workload operations.
type OpKind int

const (
	// OpQuery decomposes a typed coalition query from a member node.
	OpQuery OpKind = iota
	// OpInstances lists a coalition's members from a member node.
	OpInstances
	// OpFindKnown resolves a topic the issuing node knows locally.
	OpFindKnown
	// OpFindUnknown resolves a topic nobody offers (stage-3 peer sweep).
	OpFindUnknown
	// OpJoin joins the issuing node into a coalition it never belonged to.
	OpJoin
	// OpLeave withdraws the issuing node from a coalition.
	OpLeave
	// OpPartition cuts one node-pair link.
	OpPartition
	// OpHealAll restores every link.
	OpHealAll
)

func (k OpKind) String() string {
	switch k {
	case OpQuery:
		return "query"
	case OpInstances:
		return "instances"
	case OpFindKnown:
		return "find-known"
	case OpFindUnknown:
		return "find-unknown"
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpPartition:
		return "partition"
	case OpHealAll:
		return "heal-all"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one generated workload step.
type Op struct {
	Kind      OpKind
	Node      int    // issuing node (or partition end A)
	B         int    // partition end B
	Coalition string // target coalition, where applicable
	Topic     string // discovery topic for find ops
}

func (o Op) String() string {
	switch o.Kind {
	case OpPartition:
		return fmt.Sprintf("partition n%d|n%d", o.Node, o.B)
	case OpHealAll:
		return "heal-all"
	case OpFindUnknown:
		return fmt.Sprintf("find-unknown n%d %q", o.Node, o.Topic)
	default:
		return fmt.Sprintf("%s n%d %s", o.Kind, o.Node, o.Coalition)
	}
}

// Gen produces a seeded random workload that stays inside the envelope the
// flat oracle can predict exactly. The constraints, and why they exist:
//
//   - Queries, Instances and Find target a coalition through one of its
//     *current members*: a member's co-database copy of the coalition is
//     kept exact by the Join/Leave replication protocol, while an
//     ex-member's copy goes stale the moment it leaves (nothing advertises
//     to non-members).
//   - Join only targets coalitions with no ex-members anywhere ("stale
//     free"): the joiner's entry-point search takes the first peer knowing
//     the class, and an ex-member's stale member list would make the
//     advertise set diverge from the true membership.
//   - Join/Leave/FindUnknown only run with no active partitions, so their
//     fan-outs succeed and the oracle needs no reachability model for them.
//   - Every coalition keeps at least one member, so queries stay routable.
type Gen struct {
	rng   *rand.Rand
	steps int
}

// NewGen returns a generator over its own seeded stream (independent of the
// topology stream, so adding ops never reshuffles the topology).
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed ^ 0x5eed5eed))}
}

// Next picks the next operation given the oracle's current state.
func (g *Gen) Next(o *Oracle) Op {
	g.steps++
	for attempt := 0; attempt < 8; attempt++ {
		kind := g.pickKind(o)
		if op, ok := g.tryBuild(kind, o); ok {
			return op
		}
	}
	// Always-feasible fallback: query a coalition through one member.
	op, _ := g.tryBuild(OpQuery, o)
	return op
}

func (g *Gen) pickKind(o *Oracle) OpKind {
	r := g.rng.Intn(100)
	switch {
	case r < 35:
		return OpQuery
	case r < 50:
		return OpInstances
	case r < 60:
		return OpFindKnown
	case r < 67:
		return OpFindUnknown
	case r < 77:
		return OpJoin
	case r < 84:
		return OpLeave
	case r < 94:
		return OpPartition
	default:
		return OpHealAll
	}
}

func (g *Gen) tryBuild(kind OpKind, o *Oracle) (Op, bool) {
	switch kind {
	case OpQuery, OpInstances, OpFindKnown:
		c, m, ok := g.pickMemberOf(o, 1)
		if !ok {
			return Op{}, false
		}
		return Op{Kind: kind, Node: m, Coalition: c, Topic: c}, true
	case OpFindUnknown:
		if o.Partitioned() {
			return Op{}, false
		}
		return Op{
			Kind:  OpFindUnknown,
			Node:  g.rng.Intn(o.NumNodes),
			Topic: fmt.Sprintf("zzznothing%d", g.steps),
		}, true
	case OpJoin:
		if o.Partitioned() {
			return Op{}, false
		}
		var cands []Op
		for _, c := range o.CoalitionNames() {
			if c == BaseCoalition || !o.StaleFree(c) {
				continue
			}
			for m := 0; m < o.NumNodes; m++ {
				if !o.Ever(c, m) {
					cands = append(cands, Op{Kind: OpJoin, Node: m, Coalition: c})
				}
			}
		}
		return g.pickOp(cands)
	case OpLeave:
		if o.Partitioned() {
			return Op{}, false
		}
		var cands []Op
		for _, c := range o.CoalitionNames() {
			if c == BaseCoalition || len(o.MembersOf(c)) < 2 {
				continue
			}
			for _, m := range o.MembersOf(c) {
				cands = append(cands, Op{Kind: OpLeave, Node: m, Coalition: c})
			}
		}
		return g.pickOp(cands)
	case OpPartition:
		var cands []Op
		for a := 0; a < o.NumNodes; a++ {
			for b := a + 1; b < o.NumNodes; b++ {
				if !o.PartitionedPair(a, b) {
					cands = append(cands, Op{Kind: OpPartition, Node: a, B: b})
				}
			}
		}
		return g.pickOp(cands)
	case OpHealAll:
		if !o.Partitioned() {
			return Op{}, false
		}
		return Op{Kind: OpHealAll}, true
	}
	return Op{}, false
}

// pickMemberOf selects a coalition with at least minMembers members and one
// of its members, uniformly under the generator's stream.
func (g *Gen) pickMemberOf(o *Oracle, minMembers int) (string, int, bool) {
	var names []string
	for _, c := range o.CoalitionNames() {
		if c != BaseCoalition && len(o.MembersOf(c)) >= minMembers {
			names = append(names, c)
		}
	}
	if len(names) == 0 {
		return "", 0, false
	}
	sort.Strings(names)
	c := names[g.rng.Intn(len(names))]
	members := o.MembersOf(c)
	return c, members[g.rng.Intn(len(members))], true
}

func (g *Gen) pickOp(cands []Op) (Op, bool) {
	if len(cands) == 0 {
		return Op{}, false
	}
	return cands[g.rng.Intn(len(cands))], true
}
