package simtest

import (
	"context"
	"fmt"
	"time"

	"repro/internal/gossip"
)

// gossipRoundTick is how far the virtual clock moves per simulated gossip
// round, so detection and convergence bounds are phrased in virtual-clock
// rounds rather than wall time.
const gossipRoundTick = 50 * time.Millisecond

// RunGossipRound ticks every node's anti-entropy agent once, serially in
// index order — the simulation's unit of gossip time. Serial ticking plus
// each agent's own seeded peer-ring shuffle keeps runs bit-reproducible:
// replaying a seed replays every exchange in the same order.
func (f *Fed) RunGossipRound(ctx context.Context) {
	for _, n := range f.Nodes {
		if n.Core.Gossip != nil {
			n.Core.Gossip.Tick(ctx)
		}
	}
	f.Clock.Advance(gossipRoundTick)
}

// GossipMessages sums the protocol messages (digest exchanges plus deltas
// pushed) every agent has sent so far — the quantity the convergence test
// compares against the flat all-pairs baseline.
func (f *Fed) GossipMessages() int64 {
	var total int64
	for _, n := range f.Nodes {
		if n.Core.Gossip != nil {
			total += n.Core.Gossip.Messages()
		}
	}
	return total
}

// GossipConverged reports whether every node's gossip store holds an entry
// for every federation member at that member's current authoritative
// co-database version — the fixed point anti-entropy must reach.
func (f *Fed) GossipConverged() bool {
	for _, n := range f.Nodes {
		if n.Core.Gossip == nil {
			return false
		}
		store := n.Core.Gossip.Store()
		for _, m := range f.Nodes {
			e, ok := store.Get(m.Name)
			if !ok || e.Version != m.Core.CoDB.Version() {
				return false
			}
		}
	}
	return true
}

// gossipMonotonicity checks the version-monotonicity invariant after every
// gossip round: no store's view of any node may move backward (the
// merge-by-version rule must be airtight even under re-delivered deltas), no
// store may claim a version the authoritative co-database never issued, and
// the mdcache "gossip|<node>" view maintained by the OnApply hook must agree
// with the store it mirrors.
type gossipMonotonicity struct {
	fed  *Fed
	auth map[string]int // node name -> index, for authoritative versions
	last []gossip.Digest
}

func newGossipMonotonicity(f *Fed) *gossipMonotonicity {
	auth := make(map[string]int, len(f.Nodes))
	for i, n := range f.Nodes {
		auth[n.Name] = i
	}
	return &gossipMonotonicity{fed: f, auth: auth, last: make([]gossip.Digest, len(f.Nodes))}
}

// Check returns the first violation found, or "" when the invariant holds.
func (m *gossipMonotonicity) Check() string {
	for i, n := range m.fed.Nodes {
		if n.Core.Gossip == nil {
			continue
		}
		dig := n.Core.Gossip.Store().Digest()
		for name, ver := range m.last[i] {
			if dig[name] < ver {
				return fmt.Sprintf("%s: gossip view of %s regressed %d -> %d", n.Name, name, ver, dig[name])
			}
		}
		for name, ver := range dig {
			j, ok := m.auth[name]
			if !ok {
				return fmt.Sprintf("%s: gossip store invented node %q", n.Name, name)
			}
			if authVer := m.fed.Nodes[j].Core.CoDB.Version(); ver > authVer {
				return fmt.Sprintf("%s: gossip view of %s at version %d, co-database only at %d", n.Name, name, ver, authVer)
			}
			val, cachedVer, ok := n.Core.MDCache.PeekVersioned("gossip|" + name)
			if !ok {
				continue // never applied through gossip (e.g. boot seed or self)
			}
			if cachedVer > ver {
				return fmt.Sprintf("%s: mdcache holds %s at version %d ahead of store version %d", n.Name, name, cachedVer, ver)
			}
			if e, isEntry := val.(gossip.Entry); !isEntry || e.Version != cachedVer {
				return fmt.Sprintf("%s: mdcache gossip entry for %s does not match its version stamp (%T)", n.Name, name, val)
			}
		}
		m.last[i] = dig
	}
	return ""
}
