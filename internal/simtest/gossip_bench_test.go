package simtest

import (
	"context"
	"testing"

	"repro/internal/orb"
)

// BenchmarkGossipConvergence measures a full cold-start anti-entropy cycle
// at 64-node scale: a windowed federation (connected chain of 8-member
// coalitions, no backbone) gossips until every store holds every node at its
// authoritative version. Federation construction is excluded from the timing;
// rounds/op and msgs/op report the protocol's convergence cost alongside the
// wall time, so the EXPERIMENTS.md series can track all three.
func BenchmarkGossipConvergence(b *testing.B) {
	ctx := context.Background()
	var rounds, msgs int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fed, err := Build(Config{
			Seed:            int64(i + 1),
			Nodes:           64,
			CoalitionSize:   8,
			NoBaseCoalition: true,
			GossipFanout:    3,
			ORB:             orb.Options{MaxIdlePerHost: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		r := 0
		for ; !fed.GossipConverged() && r < 64; r++ {
			fed.RunGossipRound(ctx)
		}
		b.StopTimer()
		if !fed.GossipConverged() {
			b.Fatalf("no convergence after %d rounds", r)
		}
		rounds += int64(r)
		msgs += fed.GossipMessages()
		fed.Close()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}
