package simtest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/orb"
	"repro/internal/query"
)

// log2Ceil is ⌈log2 n⌉ — the yardstick the convergence bounds are phrased
// in, since push-pull anti-entropy spreads a new version epidemically.
func log2Ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// storesHave reports whether every node's gossip store holds `node` at
// exactly version `want`.
func storesHave(f *Fed, node string, want uint64) bool {
	for _, n := range f.Nodes {
		e, ok := n.Core.Gossip.Store().Get(node)
		if !ok || e.Version != want {
			return false
		}
	}
	return true
}

// TestGossipConvergence300 is the scale acceptance scenario: a 300-node
// federation whose topology is a connected chain of 8-member coalitions (no
// backbone coalition, so no store starts with global knowledge), driven by
// the anti-entropy agents alone. Cold-start membership must converge within
// O(log N) gossip rounds; a single metadata mutation must then reach all 300
// stores within O(log N) rounds at a message cost strictly below the flat
// fan-out baseline of N·(N-1) notifications; and the version-monotonicity
// invariant must hold after every round. The -simnet.seed flag replays the
// run deterministically.
func TestGossipConvergence300(t *testing.T) {
	const nodes = 300
	seed := int64(300)
	if s := ReplaySeed(); s != 0 {
		seed = s
	}
	fed, err := Build(Config{
		Seed:            seed,
		Nodes:           nodes,
		CoalitionSize:   8,
		NoBaseCoalition: true,
		GossipFanout:    3,
		// One multiplexed connection per endpoint: 300 ORBs each gossiping
		// with dozens of peers would otherwise pool thousands of idle
		// simulated connections.
		ORB: orb.Options{MaxIdlePerHost: 1},
	})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, ReplayLine(seed))
	}
	defer fed.Close()
	ctx := context.Background()
	mono := newGossipMonotonicity(fed)
	logN := log2Ceil(nodes) // 9

	// Phase 1 — cold start. Every store begins knowing only its coalition
	// co-members; full membership must be epidemic, not configured.
	warmBound := 4 * logN
	warm := 0
	for ; warm < warmBound && !fed.GossipConverged(); warm++ {
		fed.RunGossipRound(ctx)
		if v := mono.Check(); v != "" {
			t.Fatalf("round %d: %s\n%s", warm, v, ReplayLine(seed))
		}
	}
	if !fed.GossipConverged() {
		t.Fatalf("cold-start membership not converged after %d rounds\n%s", warmBound, ReplayLine(seed))
	}

	// Phase 2 — one metadata mutation at node 0 (a new coalition definition
	// bumps its co-database version). The new version must reach every store
	// in O(log N) rounds, spending strictly fewer messages than the flat
	// baseline in which node 0 notifies all N-1 peers and every peer
	// re-probes everyone (N·(N-1) messages).
	msgsBase := fed.GossipMessages()
	if err := fed.Nodes[0].Core.CoDB.DefineCoalition("cmutation", "", ""); err != nil {
		t.Fatal(err)
	}
	want := fed.Nodes[0].Core.CoDB.Version()
	mutBound := 2 * logN
	rounds := 0
	for !storesHave(fed, fed.Nodes[0].Name, want) {
		if rounds >= mutBound {
			t.Fatalf("mutation not converged within O(log N) = %d rounds\n%s", mutBound, ReplayLine(seed))
		}
		fed.RunGossipRound(ctx)
		rounds++
		if v := mono.Check(); v != "" {
			t.Fatalf("mutation round %d: %s\n%s", rounds, v, ReplayLine(seed))
		}
	}
	msgs := fed.GossipMessages() - msgsBase
	flatBaseline := int64(nodes * (nodes - 1))
	if msgs >= flatBaseline {
		t.Fatalf("dissemination spent %d messages, flat fan-out baseline is %d\n%s",
			msgs, flatBaseline, ReplayLine(seed))
	}
	t.Logf("300 nodes: cold start %d rounds (%d msgs), mutation %d rounds (bound %d), %d msgs vs flat %d",
		warm, msgsBase, rounds, mutBound, msgs, flatBaseline)

	// Phase 3 — the representative tier at scale: with an 8-member coalition
	// and a shard size of 4, a discovery sweep from node 0 must route through
	// shard representatives rather than probing each peer directly.
	fed.Nodes[0].Core.Processor.SetSubCoalitionSize(4)
	resp, err := fed.Nodes[0].Session.Execute(ctx, "Find Coalitions With Information zzzscale;")
	if err != nil {
		t.Fatal(err)
	}
	st := fed.Nodes[0].Core.Processor.PlannerStats()
	if st.RelayShards == 0 {
		t.Fatalf("scale sweep never sharded: %+v\n%s", st, ReplayLine(seed))
	}
	if resp.Partial {
		t.Fatalf("healthy relayed sweep flagged partial: %+v\n%s", resp.Members, ReplayLine(seed))
	}
}

// gossipTrace runs a 48-node windowed federation for a fixed number of
// rounds and renders every agent's counters plus every store's final digest
// into a normalized line trace.
func gossipTrace(t *testing.T, seed int64) []string {
	t.Helper()
	fed, err := Build(Config{
		Seed:            seed,
		Nodes:           48,
		CoalitionSize:   6,
		NoBaseCoalition: true,
		GossipFanout:    3,
		ORB:             orb.Options{MaxIdlePerHost: 1},
	})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, ReplayLine(seed))
	}
	defer fed.Close()
	ctx := context.Background()
	var lines []string
	for r := 0; r < 12; r++ {
		fed.RunGossipRound(ctx)
		for _, n := range fed.Nodes {
			s := n.Core.Gossip.Stats()
			lines = append(lines, fmt.Sprintf("round=%d node=%s exchanges=%d pushes=%d applied=%d known=%d",
				r, n.Name, s.Exchanges, s.Pushes, s.DeltasApplied, s.PeersKnown))
		}
	}
	for _, n := range fed.Nodes {
		dig := n.Core.Gossip.Store().Digest()
		names := make([]string, 0, len(dig))
		for name := range dig {
			names = append(names, name)
		}
		sort.Strings(names)
		var b strings.Builder
		fmt.Fprintf(&b, "digest node=%s", n.Name)
		for _, name := range names {
			fmt.Fprintf(&b, " %s@%d", name, dig[name])
		}
		lines = append(lines, b.String())
	}
	return lines
}

// TestGossipDeterministicReplay runs the same seed twice and requires the
// two gossip traces — every agent's per-round counters and every store's
// final digest — to match line for line: same exchanges, same deltas, same
// final state. This is what makes the 300-node scenario's -simnet.seed
// replay line trustworthy.
func TestGossipDeterministicReplay(t *testing.T) {
	seed := int64(7)
	if s := ReplaySeed(); s != 0 {
		seed = s
	}
	first := gossipTrace(t, seed)
	second := gossipTrace(t, seed)
	if len(first) != len(second) {
		t.Fatalf("trace lengths differ: %d vs %d\n%s", len(first), len(second), ReplayLine(seed))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at line %d:\n  run1: %s\n  run2: %s\n%s",
				i, first[i], second[i], ReplayLine(seed))
		}
	}
}

// hierOutcomeOf projects everything the two routing modes must agree on:
// rows, columns, Partial, per-member error class and staleness, discovery
// leads (minus fed-specific object references) and instance listings.
func hierOutcomeOf(resp *query.Response) string {
	var o diffOutcome
	if resp.Result != nil {
		o = outcomeOf(resp)
	}
	var members []string
	for _, m := range resp.Members {
		members = append(members, fmt.Sprintf("%s:%s:%v", m.Member, m.ErrClass, m.Stale))
	}
	var leads []string
	for _, l := range resp.Leads {
		leads = append(leads, fmt.Sprintf("%s:%.3f:%s", l.Coalition, l.Score, l.Via))
	}
	return fmt.Sprintf("rows=%q cols=%q partial=%v members=[%s] leads=[%s] names=%v",
		o.rows, o.columns, resp.Partial, strings.Join(members, " "), strings.Join(leads, " "), resp.Names)
}

// deadEverywhere reports whether every surviving node's failure detector has
// marked `name` dead.
func deadEverywhere(f *Fed, skip int, name string) bool {
	for _, n := range f.Nodes {
		if n.Idx == skip {
			continue
		}
		if n.Core.Gossip.Store().Alive(name) {
			return false
		}
	}
	return true
}

// TestGossipRepresentativeReelection proves representative liveness end to
// end on a deterministic single-coalition federation: six nodes in one
// coalition, shard size two, so a discovery sweep from node 0 shards its
// five peers into [N1 N2] [N3 N4] [N5] with N1 the first shard's elected
// representative. Fully partitioning N1 must (a) fail over in-line to N2
// with the answer still identical to flat routing, (b) be detected by every
// surviving node within (SuspectAfter+1) shuffled-ring cycles of virtual
// time, and (c) after detection, re-elect N2 without wasting a relay attempt
// on the dead node. Healing reverses it.
func TestGossipRepresentativeReelection(t *testing.T) {
	for _, seed := range seedsUnderTest() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			build := func(sub int) *Fed {
				fed, err := Build(Config{
					Seed:             seed,
					Nodes:            6,
					CoalitionSize:    6, // one coalition spanning everyone
					NoBaseCoalition:  true,
					SubCoalitionSize: sub,
				})
				if err != nil {
					t.Fatalf("build (sub=%d): %v\n%s", sub, err, ReplayLine(seed))
				}
				return fed
			}
			hier := build(2)
			defer hier.Close()
			flat := build(-1)
			defer flat.Close()
			ctx := context.Background()
			for r := 0; r < 2; r++ {
				hier.RunGossipRound(ctx)
				flat.RunGossipRound(ctx)
			}

			runBoth := func(topic string) *query.Response {
				t.Helper()
				stmt := "Find Coalitions With Information " + topic + ";"
				rh, err := hier.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("hier %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				rf, err := flat.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("flat %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				if a, b := hierOutcomeOf(rh), hierOutcomeOf(rf); a != b {
					t.Fatalf("routing modes diverge on %q:\n  hier: %s\n  flat: %s\n%s",
						topic, a, b, ReplayLine(seed))
				}
				return rh
			}

			// Healthy baseline: three shards, no failovers, and the flat twin
			// must not have relayed anything (non-vacuousness).
			runBoth("zzzhealthy")
			s0 := hier.Nodes[0].Core.Processor.PlannerStats()
			if s0.RelayShards != 3 || s0.RelayedProbes != 5 {
				t.Fatalf("healthy sweep: want 3 shards / 5 relayed probes, got %+v\n%s", s0, ReplayLine(seed))
			}
			if s0.RelayFailovers != 0 || s0.RelayDirectFallbacks != 0 {
				t.Fatalf("healthy sweep recorded failures: %+v\n%s", s0, ReplayLine(seed))
			}
			if fs := flat.Nodes[0].Core.Processor.PlannerStats(); fs.RelayShards != 0 {
				t.Fatalf("flat-mode twin relayed %d shards\n%s", fs.RelayShards, ReplayLine(seed))
			}

			// Kill the first shard's representative everywhere (a full
			// partition, so both routing modes see the same dead node).
			for j := 0; j < len(hier.Nodes); j++ {
				if j != 1 {
					hier.Partition(1, j)
					flat.Partition(1, j)
				}
			}

			// Before detection the coordinator still believes N1 is alive and
			// elects it; the relay must fail over to N2 in-line, and N1 is
			// reported unreachable exactly as flat routing reports it.
			rh := runBoth("zzzfailover")
			s1 := hier.Nodes[0].Core.Processor.PlannerStats()
			if s1.RelayFailovers == 0 {
				t.Fatalf("dead representative produced no failover: %+v\n%s", s1, ReplayLine(seed))
			}
			var n1 *query.MemberStatus
			for i := range rh.Members {
				if rh.Members[i].Member == "N1" {
					n1 = &rh.Members[i]
				}
			}
			if n1 == nil || n1.ErrClass != "comm" || !rh.Partial {
				t.Fatalf("partitioned member not accounted: partial=%v members=%+v\n%s",
					rh.Partial, rh.Members, ReplayLine(seed))
			}

			// Detection: every surviving node walks its peer ring once per
			// cycle, so SuspectAfter consecutive failed contacts take at most
			// (SuspectAfter+1) cycles of rounds.
			bound := 0
			for _, n := range hier.Nodes {
				if n.Idx == 1 {
					continue
				}
				if b := (n.Core.Gossip.Store().SuspectAfter() + 1) * n.Core.Gossip.CycleLen(); b > bound {
					bound = b
				}
			}
			rounds := 0
			for !deadEverywhere(hier, 1, "N1") {
				if rounds >= bound {
					t.Fatalf("N1 not marked dead within %d virtual rounds\n%s", bound, ReplayLine(seed))
				}
				hier.RunGossipRound(ctx)
				flat.RunGossipRound(ctx)
				rounds++
			}

			// Re-election: the first live shard member is now N2, so the next
			// sweep must not waste a relay attempt on the demoted node.
			runBoth("zzzreelected")
			s2 := hier.Nodes[0].Core.Processor.PlannerStats()
			if s2.RelayFailovers != s1.RelayFailovers {
				t.Fatalf("demoted representative was still tried: failovers %d -> %d\n%s",
					s1.RelayFailovers, s2.RelayFailovers, ReplayLine(seed))
			}
			if s2.RelayShards <= s1.RelayShards {
				t.Fatalf("re-elected sweep relayed nothing: %+v\n%s", s2, ReplayLine(seed))
			}

			// Healing: successful exchanges must resurrect N1 in the detector
			// within one ring cycle, and the answer returns to non-partial.
			hier.HealAll()
			flat.HealAll()
			for r := 0; r < bound && deadEverywhere(hier, 1, "N1"); r++ {
				hier.RunGossipRound(ctx)
				flat.RunGossipRound(ctx)
			}
			if deadEverywhere(hier, 1, "N1") {
				t.Fatalf("healed node never resurrected in the detector\n%s", ReplayLine(seed))
			}
			if rh := runBoth("zzzhealed"); rh.Partial {
				t.Fatalf("healed sweep still partial: %+v\n%s", rh.Members, ReplayLine(seed))
			}
		})
	}
}
