package simtest

import (
	"context"
	"strings"

	"repro/internal/codb"
	"repro/internal/mdcache"
	"repro/internal/orb"
	"repro/internal/query"
	"repro/internal/trace"
)

// The invariant checkers run after every workload step. Each reports through
// the step's fail(invariant, format, args...) sink so violations carry the
// step and operation that exposed them.

// checkTraceContinuity asserts that every span recorded during the step —
// client stages, per-member fan-out spans, and the server-side spans decoded
// from the propagated tracing service context on every hop — belongs to the
// step's root trace. A span with a different trace ID means propagation broke
// somewhere between ORBs.
func checkTraceContinuity(op Op, spans []trace.SpanRecord, rootTrace string, fail func(string, string, ...any)) {
	const inv = "trace-continuity"
	if len(spans) == 0 {
		fail(inv, "no spans recorded for %s", op)
		return
	}
	for _, sp := range spans {
		if sp.Trace != rootTrace {
			fail(inv, "span %s has trace %s, step root is %s", sp.Name, sp.Trace, rootTrace)
		}
	}
}

// checkPartialAccounting asserts the Response.Partial contract: the flag is
// set if and only if some member status is degraded (failed or served stale),
// so a partial answer always comes with complete per-member accounting of who
// was missed and why, and a full answer is never flagged. Members cut off by
// a satisfied LIMIT (ErrClass "limit") are healthy: the statement got every
// row it asked for.
func checkPartialAccounting(op Op, o *Oracle, resp *query.Response, fail func(string, string, ...any)) {
	const inv = "partial-accounting"
	degraded := 0
	for _, m := range resp.Members {
		if (!m.OK() && m.ErrClass != "limit") || m.Stale {
			degraded++
		}
	}
	if resp.Partial && degraded == 0 {
		fail(inv, "Partial set but every member status is healthy (%d statuses)", len(resp.Members))
	}
	if !resp.Partial && degraded > 0 {
		fail(inv, "Partial unset but %d of %d member statuses degraded", degraded, len(resp.Members))
	}
	for _, m := range resp.Members {
		if m.Member == "" {
			fail(inv, "member status without a member name: %+v", m)
		}
		if !m.OK() && m.Err == "" {
			fail(inv, "member %s failed (%s) without an error message", m.Member, m.ErrClass)
		}
	}
}

// checkBreakerLegality asserts every circuit breaker is in a legal state.
// The model federation configures no breaker policy, so its snapshots must
// stay empty; the checker still validates the general state machine so it can
// guard breaker-enabled scenarios too.
func checkBreakerLegality(fed *Fed, fail func(string, string, ...any)) {
	const inv = "breaker-legality"
	for _, n := range fed.Nodes {
		for addr, st := range n.ORB.BreakerSnapshot() {
			switch st.State {
			case orb.BreakerClosed, orb.BreakerOpen, orb.BreakerHalfOpen:
			default:
				fail(inv, "%s breaker for %s in unknown state %q", n.Name, addr, st.State)
			}
			if st.Failures < 0 {
				fail(inv, "%s breaker for %s has negative failure count %d", n.Name, addr, st.Failures)
			}
			if st.State != orb.BreakerClosed {
				fail(inv, "%s breaker for %s is %s with no breaker policy configured", n.Name, addr, st.State)
			}
		}
	}
}

// checkCacheCoherence asserts the metadata layer never serves membership
// older than what it claims: for every coalition a node currently belongs
// to, (a) the node's co-database replica matches the oracle's membership
// exactly, and (b) a version-verified metadata-cache read — the same
// key/version discipline the query processor uses for its in-process
// co-database — returns that same membership, proving no cache entry
// survives a co-database version bump.
func checkCacheCoherence(fed *Fed, o *Oracle, fail func(string, string, ...any)) {
	const inv = "cache-coherence"
	ctx := context.Background()
	for _, n := range fed.Nodes {
		key, err := instancesKeyFor(n)
		if err != nil {
			fail(inv, "%s: cannot derive cache key: %v", n.Name, err)
			continue
		}
		for _, c := range o.CoalitionNames() {
			if !o.Member(c, n.Idx) {
				continue
			}
			var want []string
			for _, m := range o.MembersOf(c) {
				want = append(want, o.NodeName(m))
			}
			direct, err := n.Core.CoDB.Members(c)
			if err != nil {
				fail(inv, "%s co-database lost coalition %s: %v", n.Name, c, err)
				continue
			}
			if got := descriptorNames(direct); got != strings.Join(want, ",") {
				fail(inv, "%s replica of %s = [%s], oracle says [%s]", n.Name, c, got, strings.Join(want, ","))
				continue
			}
			cd := n.Core.CoDB
			v, _, err := n.Core.MDCache.Get(ctx, key+strings.ToLower(c), mdcache.Request{
				Fetch:     func(ctx context.Context) (any, error) { return cd.Members(c) },
				Version:   func(context.Context) (uint64, error) { return cd.Version(), nil },
				VerifyHit: true,
			})
			if err != nil {
				fail(inv, "%s cached members of %s: %v", n.Name, c, err)
				continue
			}
			if got := descriptorNames(v.([]*codb.SourceDescriptor)); got != strings.Join(want, ",") {
				fail(inv, "%s cache serves %s members [%s], co-database version says [%s]",
					n.Name, c, got, strings.Join(want, ","))
			}
		}
	}
}

// instancesKeyFor rebuilds the query processor's instances-cache key prefix
// for a node's own co-database ("instances|<addr>/<objkey>|<coalition>").
func instancesKeyFor(n *Node) (string, error) {
	ref, err := n.ORB.ResolveString(n.Core.Descriptor.CoDBRef)
	if err != nil {
		return "", err
	}
	ior := ref.IOR()
	return "instances|" + ior.Addr() + "/" + ior.Key() + "|", nil
}

func descriptorNames(ds []*codb.SourceDescriptor) string {
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	return strings.Join(names, ",")
}
