package simtest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/query"
	"repro/internal/trace"
)

// Oracle is the flat in-memory model the federation is compared against: a
// plain membership map, an ever-member map (to track where stale co-database
// copies exist), and the set of active partitions. It has no caches, no
// replication and no network — if the federation and the oracle disagree,
// the federation is wrong.
type Oracle struct {
	NumNodes int
	members  map[string]map[int]bool
	ever     map[string]map[int]bool
	parts    map[[2]int]bool
}

// NewOracle seeds the model from the initial topology.
func NewOracle(numNodes int, topology map[string][]int) *Oracle {
	o := &Oracle{
		NumNodes: numNodes,
		members:  map[string]map[int]bool{},
		ever:     map[string]map[int]bool{},
		parts:    map[[2]int]bool{},
	}
	for c, members := range topology {
		o.members[c] = map[int]bool{}
		o.ever[c] = map[int]bool{}
		for _, m := range members {
			o.members[c][m] = true
			o.ever[c][m] = true
		}
	}
	return o
}

// NodeName is the model's copy of the node naming scheme.
func (o *Oracle) NodeName(i int) string { return fmt.Sprintf("N%d", i) }

// CoalitionNames lists every coalition, sorted.
func (o *Oracle) CoalitionNames() []string {
	out := make([]string, 0, len(o.members))
	for c := range o.members {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MembersOf lists a coalition's current members ordered by node name — the
// same lexicographic order codb.Members returns descriptors in.
func (o *Oracle) MembersOf(c string) []int {
	out := make([]int, 0, len(o.members[c]))
	for m := range o.members[c] {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return o.NodeName(out[i]) < o.NodeName(out[j])
	})
	return out
}

// Member reports current membership.
func (o *Oracle) Member(c string, m int) bool { return o.members[c][m] }

// Ever reports whether the node was ever a member (and so may hold a stale
// local copy of the coalition after leaving).
func (o *Oracle) Ever(c string, m int) bool { return o.ever[c][m] }

// StaleFree reports that no node holds a stale copy of the coalition: every
// node that was ever a member still is. Joins are only generated into
// stale-free coalitions, where the entry-point search cannot land on an
// out-of-date member list.
func (o *Oracle) StaleFree(c string) bool {
	for m := range o.ever[c] {
		if !o.members[c][m] {
			return false
		}
	}
	return true
}

// Partitioned reports whether any link is down.
func (o *Oracle) Partitioned() bool { return len(o.parts) > 0 }

// PartitionedPair reports whether the link between two nodes is down.
func (o *Oracle) PartitionedPair(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	return o.parts[[2]int{a, b}]
}

// Reachable reports whether a can call b (self-calls always succeed).
func (o *Oracle) Reachable(a, b int) bool { return a == b || !o.PartitionedPair(a, b) }

// Apply advances the model by one executed operation.
func (o *Oracle) Apply(op Op) {
	switch op.Kind {
	case OpJoin:
		if o.members[op.Coalition] == nil {
			o.members[op.Coalition] = map[int]bool{}
			o.ever[op.Coalition] = map[int]bool{}
		}
		o.members[op.Coalition][op.Node] = true
		o.ever[op.Coalition][op.Node] = true
	case OpLeave:
		delete(o.members[op.Coalition], op.Node)
	case OpPartition:
		a, b := op.Node, op.B
		if a > b {
			a, b = b, a
		}
		o.parts[[2]int{a, b}] = true
	case OpHealAll:
		o.parts = map[[2]int]bool{}
	}
}

// Violation is one invariant or model-conformance failure.
type Violation struct {
	Step      int
	Op        string
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d [%s] %s: %s", v.Step, v.Op, v.Invariant, v.Detail)
}

// RunResult is the outcome of one seeded model run.
type RunResult struct {
	Seed       int64
	Steps      int
	Log        []string // normalized per-step event log (determinism witness)
	Violations []Violation
}

// stepTimeout bounds each statement in wall time — a liveness backstop, not
// part of the model: simnet's auto-advancer resolves virtual waits in
// microseconds, so a statement hitting this deadline is itself a bug.
const stepTimeout = 30 * time.Second

// RunSeed builds a federation from the seed, drives `steps` generated
// operations through it serially, checks every response against the oracle
// and the cross-cutting invariants after each step, and returns the
// normalized event log plus any violations. The same seed and step count
// reproduce the identical log.
func RunSeed(cfg Config, steps int) (*RunResult, error) {
	fed, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	defer fed.Close()

	oracle := NewOracle(len(fed.Nodes), fed.Members)
	gen := NewGen(cfg.Seed)
	res := &RunResult{Seed: cfg.Seed, Steps: steps}

	for step := 0; step < steps; step++ {
		op := gen.Next(oracle)
		res.Log = append(res.Log, runStep(fed, oracle, step, op, res))
		fed.AdvanceTTL()
	}
	return res, nil
}

// runStep executes one operation, records violations into res, and returns
// the step's normalized log line.
func runStep(fed *Fed, oracle *Oracle, step int, op Op, res *RunResult) string {
	fail := func(invariant, format string, args ...any) {
		res.Violations = append(res.Violations, Violation{
			Step: step, Op: op.String(), Invariant: invariant,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// Topology operations act on the simulated network directly.
	switch op.Kind {
	case OpPartition:
		fed.Partition(op.Node, op.B)
		oracle.Apply(op)
		return fmt.Sprintf("step %d | %s", step, op)
	case OpHealAll:
		fed.HealAll()
		oracle.Apply(op)
		return fmt.Sprintf("step %d | %s", step, op)
	}

	fed.Tracer.Reset()
	ctx, cancel := context.WithTimeout(context.Background(), stepTimeout)
	ctx, root := fed.Tracer.StartSpan(ctx, "simtest.step")
	sc, _ := trace.SpanContextOf(ctx)
	stmt := stmtFor(op)
	resp, err := fed.Nodes[op.Node].Session.Execute(ctx, stmt)
	root.End(err)
	cancel()

	checkExpectation(oracle, op, resp, err, fail)
	spans := fed.Tracer.Spans()
	checkTraceContinuity(op, spans, sc.Trace.String(), fail)
	if resp != nil {
		checkPartialAccounting(op, oracle, resp, fail)
	}
	checkBreakerLegality(fed, fail)
	if err == nil {
		oracle.Apply(op)
	}
	checkCacheCoherence(fed, oracle, fail)
	return logLine(step, op, resp, err)
}

// stmtFor renders the WebTassili statement an operation executes.
func stmtFor(op Op) string {
	switch op.Kind {
	case OpQuery:
		return fmt.Sprintf(`V(R.K, (R.K = "a")) On Coalition %s;`, op.Coalition)
	case OpInstances:
		return fmt.Sprintf("Display Instances of Class %s;", op.Coalition)
	case OpFindKnown, OpFindUnknown:
		return fmt.Sprintf("Find Coalitions With Information %s;", op.Topic)
	case OpJoin:
		return fmt.Sprintf("Join Coalition %s;", op.Coalition)
	case OpLeave:
		return fmt.Sprintf("Leave Coalition %s;", op.Coalition)
	}
	panic("simtest: no statement for " + op.String())
}

// checkExpectation compares one response against the oracle's prediction.
func checkExpectation(o *Oracle, op Op, resp *query.Response, err error, fail func(string, string, ...any)) {
	const inv = "model"
	issuer := o.NodeName(op.Node)
	switch op.Kind {
	case OpQuery:
		if err != nil {
			fail(inv, "coalition query failed: %v", err)
			return
		}
		members := o.MembersOf(op.Coalition)
		var reachable []int
		for _, m := range members {
			if o.Reachable(op.Node, m) {
				reachable = append(reachable, m)
			}
		}
		if len(resp.Members) != len(members) {
			fail(inv, "statuses for %d members, oracle says %d", len(resp.Members), len(members))
			return
		}
		for i, m := range members {
			st := resp.Members[i]
			if st.Member != o.NodeName(m) {
				fail(inv, "status[%d] is %s, oracle says %s", i, st.Member, o.NodeName(m))
				continue
			}
			if o.Reachable(op.Node, m) {
				if !st.OK() {
					fail(inv, "member %s reachable but failed: %s %s", st.Member, st.ErrClass, st.Err)
				}
			} else if st.ErrClass != "comm" {
				fail(inv, "member %s partitioned from %s but class = %q (want comm)",
					st.Member, issuer, st.ErrClass)
			}
		}
		if want := len(reachable) < len(members); resp.Partial != want {
			fail(inv, "Partial = %v, oracle says %v", resp.Partial, want)
		}
		if resp.Result == nil {
			fail(inv, "no merged result")
			return
		}
		if len(resp.Result.Rows) != len(reachable) {
			fail(inv, "%d merged rows, oracle says %d", len(resp.Result.Rows), len(reachable))
			return
		}
		for i, m := range reachable {
			row := resp.Result.Rows[i]
			if len(row) != 2 {
				fail(inv, "row %d has %d cells, want 2", i, len(row))
				continue
			}
			// idl string values render quoted; strip that for the compare.
			src := strings.Trim(fmt.Sprintf("%v", row[0]), `"`)
			val := fmt.Sprintf("%v", row[1])
			if src != o.NodeName(m) || val != fmt.Sprintf("%d", m) {
				fail(inv, "row %d = (%s, %s), oracle says (%s, %d)", i, src, val, o.NodeName(m), m)
			}
		}
	case OpInstances:
		if err != nil {
			fail(inv, "instances failed: %v", err)
			return
		}
		var want []string
		for _, m := range o.MembersOf(op.Coalition) {
			want = append(want, o.NodeName(m))
		}
		if got := strings.Join(resp.Names, ","); got != strings.Join(want, ",") {
			fail(inv, "instances = [%s], oracle says [%s]", got, strings.Join(want, ","))
		}
		if resp.Partial {
			fail(inv, "instances flagged partial")
		}
	case OpFindKnown:
		if err != nil {
			fail(inv, "find failed: %v", err)
			return
		}
		// The issuer is a current member: its local co-database matches the
		// coalition name with a full score, so discovery answers at stage 1
		// with exactly one lead and no peer probes.
		if len(resp.Leads) != 1 || resp.Leads[0].Coalition != op.Coalition ||
			resp.Leads[0].Score != 1.0 || resp.Leads[0].Via != "local" {
			fail(inv, "leads = %+v, oracle says one local full-score lead for %s", resp.Leads, op.Coalition)
		}
		if len(resp.Members) != 0 {
			fail(inv, "stage-1 discovery probed %d peers", len(resp.Members))
		}
	case OpFindUnknown:
		if err != nil {
			fail(inv, "find failed: %v", err)
			return
		}
		if len(resp.Leads) != 0 {
			fail(inv, "leads for unknown topic: %+v", resp.Leads)
		}
		if want := fmt.Sprintf("No coalitions found for information %q.", op.Topic); resp.Text != want {
			fail(inv, "text = %q, want %q", resp.Text, want)
		}
		// No partitions are active (generator invariant), so discovery probes
		// every other federation node exactly once and all answer.
		if len(resp.Members) != o.NumNodes-1 {
			fail(inv, "probed %d peers, oracle says %d", len(resp.Members), o.NumNodes-1)
		}
		for _, st := range resp.Members {
			if !st.OK() || st.Stale {
				fail(inv, "probe of %s degraded: class=%s stale=%v", st.Member, st.ErrClass, st.Stale)
			}
		}
	case OpJoin:
		if err != nil {
			fail(inv, "join failed: %v", err)
			return
		}
		if want := fmt.Sprintf("%s joined coalition %s.", issuer, op.Coalition); resp.Text != want {
			fail(inv, "text = %q, want %q", resp.Text, want)
		}
	case OpLeave:
		if err != nil {
			fail(inv, "leave failed: %v", err)
			return
		}
		if want := fmt.Sprintf("%s left coalition %s.", issuer, op.Coalition); resp.Text != want {
			fail(inv, "text = %q, want %q", resp.Text, want)
		}
	}
}

// logLine renders the normalized, replay-comparable record of one step: the
// operation, the response text, and each member status's identity flags —
// no durations, addresses or span IDs, which legitimately vary across runs.
func logLine(step int, op Op, resp *query.Response, err error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %d | %s", step, op)
	if err != nil {
		fmt.Fprintf(&b, " | err=%v", err)
		return b.String()
	}
	fmt.Fprintf(&b, " | partial=%v", resp.Partial)
	if len(resp.Members) > 0 {
		var sts []string
		for _, m := range resp.Members {
			flags := m.ErrClass
			if m.Cached {
				flags += "+cached"
			}
			if m.Stale {
				flags += "+stale"
			}
			sts = append(sts, m.Member+":"+flags)
		}
		fmt.Fprintf(&b, " | members=%s", strings.Join(sts, ","))
	}
	fmt.Fprintf(&b, " | text=%q", resp.Text)
	return b.String()
}
