package simtest

import (
	"flag"
	"fmt"
)

// seedFlag lets a failure be replayed deterministically:
//
//	go test ./internal/simtest -run TestModelAgainstOracle -simnet.seed=N
//
// When set (non-zero), the model-based test runs that single seed instead of
// the fixed seed matrix.
var seedFlag = flag.Int64("simnet.seed", 0, "replay the model-based simulation test with this seed only")

// ReplaySeed returns the seed selected with -simnet.seed, or 0 if unset.
func ReplaySeed() int64 { return *seedFlag }

// ReplayLine renders the one-liner that reproduces a failed run.
func ReplayLine(seed int64) string {
	return fmt.Sprintf("replay: go test ./internal/simtest -run TestModelAgainstOracle -simnet.seed=%d", seed)
}
