package simtest

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/query"
)

// The differential semi-join suite: the same heterogeneous federation is
// built twice from the same seed — once with semi-join key pushdown on, once
// with it off — and both run an identical join workload. The pushdown may
// only change how many probe-side rows cross the wire (engine-side IN lists,
// coordinator Bloom prefilter), never the answer: rows, columns, Partial
// flag and per-member error classes must match exactly, across engines,
// seeds, a metadata-drift member that rejects pushed IN lists mid-query,
// partitions, and the Bloom path.

// semiJoinWorkload is the statement list both modes execute from node 0.
var semiJoinWorkload = []string{
	// Selective build side: only the small v values survive, so the probe's
	// IN push prunes every k-row of nodes 1+. Exact-key path on capable
	// engines, coordinator filter on the object engines, rejected-then-bare
	// on the drift member.
	`V(R.K) On Coalition ` + BaseCoalition + ` SemiJoin V(R.V, (R.V < 5)) On Coalition ` + BaseCoalition + `;`,
	// String-typed keys through K: the IN list renders quoted literals.
	`K(R.V) On Coalition ` + BaseCoalition + ` SemiJoin K(R.V, (R.K LIKE "k0%")) On Coalition ` + BaseCoalition + `;`,
	// The outer side estimates more selective (equality beats no predicate),
	// so the planner swaps: outer builds, the join clause side probes.
	`V(R.K, (R.K = "a")) On Coalition ` + BaseCoalition + ` SemiJoin V(R.V) On Coalition ` + BaseCoalition + `;`,
	// Cross-coalition correlation: probe c0 by keys built over c1.
	`V(R.K) On Coalition c0 SemiJoin V(R.V, (R.V = 2)) On Coalition c1;`,
	// Top-K over the probe stream: LIMIT counts post-filter rows and
	// early-terminates the probe fan-out.
	`V(R.K) On Coalition ` + BaseCoalition + ` SemiJoin V(R.V, (R.V < 2000)) On Coalition ` + BaseCoalition + ` Limit 3;`,
	// Empty build side: nothing matches, the probe must come back empty
	// (and no IN () fragment may ever be rendered).
	`V(R.K) On Coalition ` + BaseCoalition + ` SemiJoin V(R.V, (R.V = 999999)) On Coalition ` + BaseCoalition + `;`,
}

// buildSemiJoinFed builds one half of a differential pair. keyLimit 0 keeps
// the default exact-IN/Bloom crossover.
func buildSemiJoinFed(t *testing.T, seed int64, disableSemiJoin bool, keyLimit int) *Fed {
	t.Helper()
	fed, err := Build(Config{
		Seed:             seed,
		Hetero:           true,
		RowsPerNode:      diffRows,
		DisableSemiJoin:  disableSemiJoin,
		SemiJoinKeyLimit: keyLimit,
	})
	if err != nil {
		t.Fatalf("build (semijoin off=%v): %v\n%s", disableSemiJoin, err, ReplayLine(seed))
	}
	return fed
}

// TestDifferentialSemiJoin runs the join workload over the seed matrix,
// healthy and under a partition, and requires byte-identical outcomes from
// both semi-join modes — while proving the two modes actually took different
// paths: keys pushed and probe rows pruned on one side, nothing pushed on
// the other, a mid-query IN rejection on the drift member, and strictly
// fewer probe-side rows moved with the pushdown on.
func TestDifferentialSemiJoin(t *testing.T) {
	for _, seed := range seedsUnderTest() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			on := buildSemiJoinFed(t, seed, false, 0)
			defer on.Close()
			off := buildSemiJoinFed(t, seed, true, 0)
			defer off.Close()

			ctx := context.Background()
			runBoth := func(stmt string) (*query.Response, *query.Response) {
				t.Helper()
				ron, err := on.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("semijoin-on %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				roff, err := off.Nodes[0].Session.Execute(ctx, stmt)
				if err != nil {
					t.Fatalf("semijoin-off %q: %v\n%s", stmt, err, ReplayLine(seed))
				}
				if a, b := outcomeOf(ron), outcomeOf(roff); a != b {
					t.Fatalf("semi-join modes diverge on %q:\n  on : %+v\n  off: %+v\n%s",
						stmt, a, b, ReplayLine(seed))
				}
				return ron, roff
			}

			for _, stmt := range semiJoinWorkload {
				runBoth(stmt)
			}

			// Under a partition both sides of the join fan out to the dead
			// member; the degraded accounting must agree between modes, and
			// the unreachable member must report "comm".
			on.Partition(0, 2)
			off.Partition(0, 2)
			ron, _ := runBoth(semiJoinWorkload[0])
			found := false
			for _, m := range ron.Members {
				if m.Member == "N2" && m.ErrClass == "comm" {
					found = true
				}
			}
			if !found || !ron.Partial {
				t.Fatalf("partitioned member not accounted: partial=%v members=%+v\n%s",
					ron.Partial, ron.Members, ReplayLine(seed))
			}
			on.HealAll()
			off.HealAll()

			// The equivalence must not be vacuous.
			son := on.Nodes[0].Core.Processor.PlannerStats()
			soff := off.Nodes[0].Core.Processor.PlannerStats()
			if son.SemiJoins == 0 || soff.SemiJoins == 0 {
				t.Fatalf("semi-join statements not counted (on=%d off=%d)\n%s",
					son.SemiJoins, soff.SemiJoins, ReplayLine(seed))
			}
			if son.KeysPushed == 0 {
				t.Fatalf("semijoin-on pushed no keys\n%s", ReplayLine(seed))
			}
			if son.ProbeRowsPruned == 0 {
				t.Fatalf("semijoin-on pruned no probe rows at the coordinator\n%s", ReplayLine(seed))
			}
			if son.SemiJoinFallbacks == 0 {
				t.Fatalf("drift member never rejected a pushed IN list (fallback path untested)\n%s", ReplayLine(seed))
			}
			if soff.KeysPushed != 0 || soff.BloomPushed != 0 || soff.SemiJoinFallbacks != 0 {
				t.Fatalf("semijoin-off still pushed (keys=%d bloom=%d fallbacks=%d)\n%s",
					soff.KeysPushed, soff.BloomPushed, soff.SemiJoinFallbacks, ReplayLine(seed))
			}
			// The pushdown's point: strictly fewer probe-side rows crossed the
			// wire (build sides are identical between modes).
			if son.RowsMoved >= soff.RowsMoved {
				t.Fatalf("semi-join pushdown moved %d rows, filter-only moved %d — no win\n%s",
					son.RowsMoved, soff.RowsMoved, ReplayLine(seed))
			}
		})
	}
}

// TestDifferentialSemiJoinBloom forces the Bloom path (key limit 1 makes any
// multi-key build side cross the threshold) and requires the same answers as
// the pushdown-off mode: Bloom false positives must be filtered exactly,
// never delivered.
func TestDifferentialSemiJoinBloom(t *testing.T) {
	seed := int64(11)
	if s := ReplaySeed(); s != 0 {
		seed = s
	}
	on := buildSemiJoinFed(t, seed, false, 1)
	defer on.Close()
	off := buildSemiJoinFed(t, seed, true, 1)
	defer off.Close()

	ctx := context.Background()
	for _, stmt := range semiJoinWorkload {
		ron, err := on.Nodes[0].Session.Execute(ctx, stmt)
		if err != nil {
			t.Fatalf("bloom-on %q: %v\n%s", stmt, err, ReplayLine(seed))
		}
		roff, err := off.Nodes[0].Session.Execute(ctx, stmt)
		if err != nil {
			t.Fatalf("bloom-off %q: %v\n%s", stmt, err, ReplayLine(seed))
		}
		if a, b := outcomeOf(ron), outcomeOf(roff); a != b {
			t.Fatalf("bloom mode diverges on %q:\n  on : %+v\n  off: %+v\n%s",
				stmt, a, b, ReplayLine(seed))
		}
	}
	son := on.Nodes[0].Core.Processor.PlannerStats()
	if son.BloomPushed == 0 {
		t.Fatalf("key limit 1 never engaged the Bloom path\n%s", ReplayLine(seed))
	}
	if son.ProbeRowsPruned == 0 {
		t.Fatalf("Bloom mode pruned no probe rows\n%s", ReplayLine(seed))
	}
}
