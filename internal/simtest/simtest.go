// Package simtest is the scenario kit on top of internal/simnet: it
// assembles whole multi-node WebFINDIT federations in one process with zero
// real sockets, generates seeded random topologies and workloads, checks
// cross-cutting invariants after every step (trace continuity, partial-result
// accounting, metadata-cache coherence, breaker legality), and runs a
// model-based comparison of federation query results against a flat
// in-memory oracle. Every failure banner includes a `-simnet.seed=N`
// one-liner that replays the exact run: same seed, same event order, same
// verdict.
package simtest

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/codb"
	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/orb"
	"repro/internal/query"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// BaseCoalition is the coalition every node belongs to for the whole run.
// It gives discovery a connectivity backbone (stage-3 peer probes and
// coalition-entry searches walk its member list) and is never the target of
// generated Join/Leave/Partition-sensitive assertions.
const BaseCoalition = "fedbase"

// Config sizes a simulated federation.
type Config struct {
	// Seed drives topology generation and the workload. Replaying a seed
	// reproduces the run.
	Seed int64
	// Nodes is the federation size (default 6).
	Nodes int
	// Coalitions is how many named coalitions ("c0"…) to scatter over the
	// nodes (default 3).
	Coalitions int
	// ORB is the base option set for every node's ORB; Transport, Product
	// and DisableColocation are overridden per node. Leave Retry/Breaker
	// zero for an exact oracle (no retry/breaker state to model).
	ORB orb.Options
	// MDCacheTTL overrides the metadata-cache TTL (default 2s). The cache
	// runs on the simulation's virtual clock.
	MDCacheTTL time.Duration
	// Hetero cycles the nodes through the paper's engine set (Oracle, mSQL,
	// ObjectStore, DB2, Ontos, Sybase) instead of all-Oracle, and makes node
	// 1 a metadata-drift member: it runs mSQL but advertises Oracle, so the
	// planner pushes clauses (LIKE) the engine then rejects and must recover
	// from. Off by default — the model-based tests assume all-Oracle.
	Hetero bool
	// RowsPerNode seeds each node's r table with this many rows (default 1,
	// the single ('a', i) row the model oracle predicts; extra rows keep
	// that row so model runs stay exact). Row r > 0 of node i is
	// ('k<rr>', i*1000+r), giving pushdown queries selective predicates,
	// LIKE-able keys and enough volume for LIMIT to bite.
	RowsPerNode int
	// DisablePushdown builds every node with predicate/limit pushdown off.
	// The differential suite builds one federation per mode from the same
	// seed and requires identical answers.
	DisablePushdown bool
	// DisableStreaming builds every node with the member cursor protocol off:
	// coalition sub-queries materialize whole results instead of paging. The
	// streaming differential suite builds one federation per transport from
	// the same seed and requires identical answers.
	DisableStreaming bool
	// MergeBufRows overrides each node's merge window / cursor batch size
	// (0 = default 64). Small values force multi-fetch cursor traffic even on
	// small fixtures.
	MergeBufRows int
	// DisableSemiJoin builds every node with semi-join key pushdown off:
	// join statements run with the exact coordinator filter only. The
	// semi-join differential suite builds one federation per mode from the
	// same seed and requires identical answers.
	DisableSemiJoin bool
	// SemiJoinKeyLimit overrides the exact-IN/Bloom crossover (0 = default
	// 64). Setting it to 1 forces the Bloom path on any multi-key build side.
	SemiJoinKeyLimit int
	// SemiJoinBloomBits overrides the Bloom prefilter size in bits per key
	// (0 = default 10).
	SemiJoinBloomBits int
	// CoalitionSize switches topology generation from the legacy coin-flip
	// draw to windowed mode: coalitions become overlapping windows of this
	// many members laid over a seeded permutation ring, so membership forms
	// one connected chain of small coalitions and no node needs global
	// knowledge at boot. Coalitions is ignored — the window count derives
	// from Nodes. This is the shape the large-federation gossip scenarios
	// use; 0 keeps the legacy draw byte-for-byte.
	CoalitionSize int
	// NoBaseCoalition drops the all-nodes backbone coalition, leaving only
	// the generated ones. Large gossip federations set it: a coalition
	// spanning all N nodes would seed every gossip store with the full
	// membership at boot and make convergence (and the flat-baseline
	// comparison) vacuous.
	NoBaseCoalition bool
	// DisableGossip builds every node without its anti-entropy agent, as
	// core.NodeConfig.DisableGossip does.
	DisableGossip bool
	// GossipFanout is how many peers each node exchanges digests with per
	// simulated gossip round (0 = agent default 3).
	GossipFanout int
	// GossipSuspectAfter is how many consecutive failed exchanges mark a
	// peer dead in the failure detector (0 = default 2).
	GossipSuspectAfter int
	// SubCoalitionSize sets each node's hierarchical-discovery threshold:
	// stage-3 coalition groups larger than this are probed through shard
	// representatives instead of directly (0 = query default 32, negative
	// disables relaying). The differential suite builds one federation per
	// mode from the same seed and requires identical answers.
	SubCoalitionSize int
}

// Node is one federation participant: its simulated host, ORB and core node.
type Node struct {
	Idx     int
	Name    string
	Host    string
	ORB     *orb.ORB
	Core    *core.Node
	Session *query.Session
}

// Fed is a running federation over simnet.
type Fed struct {
	Net    *simnet.Net
	Clock  *simnet.Clock
	Tracer *trace.Tracer
	Nodes  []*Node
	Seed   int64
	TTL    time.Duration

	// Members is the initial topology: coalition name -> member indexes,
	// in index order. The oracle evolves its own copy as the workload
	// joins and leaves.
	Members map[string][]int

	rng *rand.Rand
}

// Build boots a federation over a fresh simnet: every node on its own
// simulated host and ORB (colocation disabled, so every call crosses the
// simulated wire), tracing enabled on a federation-wide tracer, metadata
// caches pinned to the virtual clock, and coalition metadata replicated
// symmetrically into every member's co-database (the same wiring
// core.Federation.DefineCoalition does, for per-node ORBs).
func Build(cfg Config) (*Fed, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 6
	}
	if cfg.Coalitions <= 0 {
		cfg.Coalitions = 3
	}
	if cfg.MDCacheTTL <= 0 {
		cfg.MDCacheTTL = 2 * time.Second
	}
	snet := simnet.New(cfg.Seed)
	fed := &Fed{
		Net:    snet,
		Clock:  snet.Clock(),
		Tracer: trace.New(trace.Options{Capacity: 8192}),
		Seed:   cfg.Seed,
		TTL:    cfg.MDCacheTTL,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	products := []orb.Product{orb.Orbix, orb.OrbixWeb, orb.VisiBroker}
	for i := 0; i < cfg.Nodes; i++ {
		ep := snet.Endpoint(fmt.Sprintf("n%d", i))
		opts := cfg.ORB
		opts.Transport = ep
		opts.Product = products[i%len(products)]
		opts.DisableColocation = true
		o := orb.New(opts)
		if err := o.Listen(":0"); err != nil {
			fed.Close()
			return nil, err
		}
		o.EnableTracing(fed.Tracer)
		name := fmt.Sprintf("N%d", i)
		nc := core.NodeConfig{
			Name:            name,
			Engine:          core.EngineOracle,
			ORB:             o,
			InformationType: "records",
			Interface: []codb.ExportedType{{
				Name: "R",
				Functions: []codb.ExportedFunction{{
					Name: "V", Returns: "int",
					Table: "r", ResultColumn: "v", ArgColumn: "k",
				}, {
					// K is V's inverse (string keys out, int values in) so
					// semi-join workloads can correlate string-typed columns.
					Name: "K", Returns: "string",
					Table: "r", ResultColumn: "k", ArgColumn: "v",
				}},
			}},
			Clock:             fed.Clock.Now,
			MDCacheTTL:        cfg.MDCacheTTL,
			DisablePushdown:   cfg.DisablePushdown,
			DisableStreaming:  cfg.DisableStreaming,
			MergeBufRows:      cfg.MergeBufRows,
			DisableSemiJoin:   cfg.DisableSemiJoin,
			SemiJoinKeyLimit:  cfg.SemiJoinKeyLimit,
			SemiJoinBloomBits: cfg.SemiJoinBloomBits,
			DisableGossip:     cfg.DisableGossip,
			GossipFanout:      cfg.GossipFanout,
			// Each agent shuffles its peer ring from its own stream, derived
			// from the run seed so replaying a seed replays every walk.
			GossipSeed:         cfg.Seed*1009 + int64(i) + 1,
			GossipSuspectAfter: cfg.GossipSuspectAfter,
			SubCoalitionSize:   cfg.SubCoalitionSize,
		}
		if cfg.Hetero {
			nc.Engine = heteroEngines[i%len(heteroEngines)]
			if i == 1 {
				// The drift member: runs mSQL, claims Oracle. The planner
				// believes the claim, pushes LIKE, and the engine rejects it
				// mid-query — exercising the bare-fragment fallback.
				nc.AdvertiseEngine = core.EngineOracle
			}
		}
		seedNodeData(&nc, i, cfg.RowsPerNode)
		node, err := core.NewNode(nc)
		if err != nil {
			fed.Close()
			return nil, err
		}
		node.Processor.SetFanOut(1) // serial fan-out: deterministic event order
		node.Processor.SetMemberPolicy(1, 0)
		fed.Nodes = append(fed.Nodes, &Node{
			Idx:     i,
			Name:    name,
			Host:    ep.Host(),
			ORB:     o,
			Core:    node,
			Session: node.NewSession(),
		})
	}

	// Seeded topology: the base coalition spans everyone (unless dropped);
	// the named coalitions come from the parameterized generator, which the
	// 300-node builder shares with the legacy 6-node path.
	fed.Members = map[string][]int{}
	if !cfg.NoBaseCoalition {
		fed.Members[BaseCoalition] = allIndexes(cfg.Nodes)
	}
	for name, members := range genTopology(fed.rng, cfg.Nodes, cfg.Coalitions, cfg.CoalitionSize) {
		fed.Members[name] = members
	}
	for name, members := range fed.Members {
		if err := fed.wireCoalition(name, members); err != nil {
			fed.Close()
			return nil, err
		}
	}
	return fed, nil
}

// wireCoalition replicates a coalition class and its full member list into
// every member's co-database — the symmetric state Join/Leave maintain.
func (f *Fed) wireCoalition(name string, members []int) error {
	for _, i := range members {
		cd := f.Nodes[i].Core.CoDB
		if !cd.HasCoalition(name) {
			if err := cd.DefineCoalition(name, "", ""); err != nil {
				return err
			}
		}
		for _, j := range members {
			if err := cd.AddMember(name, f.Nodes[j].Core.Descriptor); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close shuts down every ORB and the simulated network.
func (f *Fed) Close() {
	for _, n := range f.Nodes {
		if n.ORB != nil {
			n.ORB.Shutdown()
		}
	}
	f.Net.Close()
}

// Partition cuts the simulated link between two nodes.
func (f *Fed) Partition(a, b int) { f.Net.Partition(f.Nodes[a].Host, f.Nodes[b].Host) }

// Heal restores the simulated link between two nodes.
func (f *Fed) Heal(a, b int) { f.Net.Heal(f.Nodes[a].Host, f.Nodes[b].Host) }

// HealAll restores every link.
func (f *Fed) HealAll() { f.Net.HealAll() }

// AdvanceTTL moves the virtual clock past the metadata-cache TTL, expiring
// every blind-TTL (peer) cache entry. The model runner calls it between
// steps so no peer metadata is carried across steps and the oracle stays
// exact; version-verified local entries revalidate for free either way.
func (f *Fed) AdvanceTTL() { f.Clock.Advance(f.TTL + time.Millisecond) }

// heteroEngines is the cycle Config.Hetero assigns over node indexes: the
// paper's four relational vendors interleaved with its two object engines.
var heteroEngines = []string{
	core.EngineOracle, core.EngineMSQL, core.EngineObjectStore,
	core.EngineDB2, core.EngineOntos, core.EngineSybase,
}

// seedNodeData fills node i's data source with `rows` rows (minimum 1). Row
// 0 is the ('a', i) row the model oracle predicts; row r is ('k<rr>',
// i*1000+r). Relational engines seed through the DDL script, object engines
// through their native API — same logical content either way.
func seedNodeData(nc *core.NodeConfig, i, rows int) {
	if rows <= 0 {
		rows = 1
	}
	if core.IsRelational(nc.Engine) {
		var b strings.Builder
		b.WriteString("CREATE TABLE r (k VARCHAR(16) PRIMARY KEY, v INT);\n")
		for r := 0; r < rows; r++ {
			k, v := rowKV(i, r)
			fmt.Fprintf(&b, "INSERT INTO r VALUES ('%s', %d);\n", k, v)
		}
		nc.Schema = b.String()
		return
	}
	nc.SeedObjects = func(db *oodb.DB) error {
		if _, err := db.DefineClass("r", "",
			oodb.Attribute{Name: "k", Type: oodb.AttrString},
			oodb.Attribute{Name: "v", Type: oodb.AttrInt}); err != nil {
			return err
		}
		for r := 0; r < rows; r++ {
			k, v := rowKV(i, r)
			if _, err := db.NewObject("r", map[string]any{"k": k, "v": int64(v)}); err != nil {
				return err
			}
		}
		return nil
	}
}

// rowKV is the deterministic content of node i's row r.
func rowKV(i, r int) (string, int) {
	if r == 0 {
		return "a", i
	}
	return fmt.Sprintf("k%02d", r), i*1000 + r
}

func allIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func insertSorted(s []int, v int) []int {
	s = append(s, v)
	for i := len(s) - 1; i > 0 && s[i-1] > s[i]; i-- {
		s[i-1], s[i] = s[i], s[i-1]
	}
	return s
}
