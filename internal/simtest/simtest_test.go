package simtest

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/simnet"
)

const modelSteps = 40

// modelSeeds is the fixed seed matrix CI runs the model-based test over;
// -simnet.seed=N narrows the run to one seed for replay.
var modelSeeds = []int64{1, 2, 3, 4}

func seedsUnderTest() []int64 {
	if s := ReplaySeed(); s != 0 {
		return []int64{s}
	}
	return modelSeeds
}

// TestModelAgainstOracle drives a seeded random workload — queries,
// discovery, joins, leaves, partitions — through a six-node federation over
// simnet and compares every response against the flat in-memory oracle,
// checking the cross-cutting invariants after each step. A failure prints the
// -simnet.seed one-liner that replays it deterministically.
func TestModelAgainstOracle(t *testing.T) {
	for _, seed := range seedsUnderTest() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res, err := RunSeed(Config{Seed: seed}, modelSteps)
			if err != nil {
				t.Fatalf("%v\n%s", err, ReplayLine(seed))
			}
			if len(res.Violations) == 0 {
				return
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%d violation(s) over %d steps\n", len(res.Violations), res.Steps)
			for _, v := range res.Violations {
				fmt.Fprintf(&b, "  %s\n", v)
			}
			fmt.Fprintf(&b, "event log:\n")
			for _, l := range res.Log {
				fmt.Fprintf(&b, "  %s\n", l)
			}
			t.Fatalf("%s%s", b.String(), ReplayLine(seed))
		})
	}
}

// TestModelDeterministicReplay runs the same seed twice and requires the two
// normalized event logs to be identical line for line: same operations, same
// responses, same member statuses, same verdict.
func TestModelDeterministicReplay(t *testing.T) {
	seed := int64(7)
	if s := ReplaySeed(); s != 0 {
		seed = s
	}
	first, err := RunSeed(Config{Seed: seed}, modelSteps)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSeed(Config{Seed: seed}, modelSteps)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Log) != len(second.Log) {
		t.Fatalf("run lengths differ: %d vs %d\n%s", len(first.Log), len(second.Log), ReplayLine(seed))
	}
	for i := range first.Log {
		if first.Log[i] != second.Log[i] {
			t.Fatalf("replay diverged at step %d:\n  run1: %s\n  run2: %s\n%s",
				i, first.Log[i], second.Log[i], ReplayLine(seed))
		}
	}
}

// TestFederationOverSimnetNoSockets is the acceptance scenario: a six-node
// federation boots, discovers, and answers a decomposed coalition query
// entirely over the in-memory transport. The dial guard is structural — every
// node lives on a "sim<id>-" host, a namespace no OS resolver or TCP stack
// can reach — and the simnet dial counter proves the traffic went through it.
func TestFederationOverSimnetNoSockets(t *testing.T) {
	fed, err := Build(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if len(fed.Nodes) < 6 {
		t.Fatalf("federation has %d nodes, want >= 6", len(fed.Nodes))
	}

	simHost := regexp.MustCompile(`^sim\d+-n\d+$`)
	for _, n := range fed.Nodes {
		if !simHost.MatchString(n.Host) {
			t.Fatalf("node %s host %q is not in the simnet namespace", n.Name, n.Host)
		}
		if got := simnet.HostOf(n.ORB.Addr()); got != n.Host {
			t.Fatalf("node %s ORB listens on %q, want host %q", n.Name, n.ORB.Addr(), n.Host)
		}
	}

	ctx := context.Background()
	sess := fed.Nodes[0].Session

	// Discovery: the base coalition spans the federation, so a member finds
	// it locally with a full score.
	resp, err := sess.Execute(ctx, "Find Coalitions With Information "+BaseCoalition+";")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Leads) == 0 || resp.Leads[0].Coalition != BaseCoalition {
		t.Fatalf("discovery found %+v, want %s", resp.Leads, BaseCoalition)
	}

	// Browsing: the member list crosses the wire from the co-database servant.
	resp, err = sess.Execute(ctx, "Display Instances of Class "+BaseCoalition+";")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Names) != len(fed.Nodes) {
		t.Fatalf("instances = %v, want all %d nodes", resp.Names, len(fed.Nodes))
	}

	// Decomposed query: every node answers its slice over simnet.
	resp, err = sess.Execute(ctx, `V(R.K, (R.K = "a")) On Coalition `+BaseCoalition+";")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Partial {
		t.Fatalf("healthy federation answered partially: %+v", resp.Members)
	}
	if got := len(resp.Result.Rows); got != len(fed.Nodes) {
		t.Fatalf("merged %d rows, want %d", got, len(fed.Nodes))
	}

	stats := fed.Net.Stats()
	if stats.Dials == 0 || stats.Messages == 0 {
		t.Fatalf("no simulated traffic recorded: %+v", stats)
	}
	var iiop int64
	for _, n := range fed.Nodes {
		iiop += n.ORB.Stats.IIOPCalls.Load()
	}
	if iiop == 0 {
		t.Fatal("no IIOP calls recorded — colocation bypassed the wire?")
	}
}
