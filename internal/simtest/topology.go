package simtest

import (
	"fmt"
	"math/rand"
	"sort"
)

// genTopology draws the named-coalition membership map ("c0"…) from the
// topology stream. Two modes share the generator, so the 300-node gossip
// builder and the legacy 6-node model federations reproduce from the same
// seed discipline:
//
//   - size == 0: the legacy coin-flip draw — each of `coalitions` coalitions
//     takes a random node subset, padded to at least two members so Leave has
//     somewhere to go. The stream consumption is byte-identical to the
//     original inline code, so existing seeds replay unchanged.
//   - size > 0: windowed mode — overlapping windows of `size` members laid
//     over a seeded permutation ring, one window every size/2 positions. Any
//     two consecutive windows share half their members and the last window
//     wraps onto the first, so the coalition graph is one connected chain:
//     gossip seeded only with co-members still reaches everyone, in O(log N)
//     rounds, without any node holding global membership at boot.
func genTopology(rng *rand.Rand, nodes, coalitions, size int) map[string][]int {
	if size > 0 {
		return windowTopology(rng, nodes, size)
	}
	return coinFlipTopology(rng, nodes, coalitions)
}

func coinFlipTopology(rng *rand.Rand, nodes, coalitions int) map[string][]int {
	out := map[string][]int{}
	for c := 0; c < coalitions; c++ {
		name := fmt.Sprintf("c%d", c)
		var members []int
		for i := 0; i < nodes; i++ {
			if rng.Intn(2) == 0 {
				members = append(members, i)
			}
		}
		for len(members) < 2 {
			i := rng.Intn(nodes)
			if !containsInt(members, i) {
				members = insertSorted(members, i)
			}
		}
		out[name] = members
	}
	return out
}

func windowTopology(rng *rand.Rand, nodes, size int) map[string][]int {
	if size > nodes {
		size = nodes
	}
	perm := rng.Perm(nodes)
	stride := size / 2
	if stride < 1 {
		stride = 1
	}
	count := (nodes + stride - 1) / stride
	if size == nodes {
		count = 1
	}
	out := map[string][]int{}
	for w := 0; w < count; w++ {
		members := make([]int, size)
		for k := 0; k < size; k++ {
			members[k] = perm[(w*stride+k)%nodes]
		}
		sort.Ints(members)
		out[fmt.Sprintf("c%d", w)] = members
	}
	return out
}
