package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
)

// Handler serves the tracer's debug endpoints:
//
//	/debug/metrics     per-operation counters + latency histograms, published
//	                   vars, and the slow-call threshold (expvar-style JSON)
//	/debug/trace       recent spans; ?trace=<hex id> filters to one trace,
//	                   ?n=<count> keeps only the newest n spans
//	/debug/trace/slow  the slow-call log
func (t *Tracer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", t.serveMetrics)
	mux.HandleFunc("/debug/trace", t.serveTrace)
	mux.HandleFunc("/debug/trace/slow", t.serveSlow)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (t *Tracer) serveMetrics(w http.ResponseWriter, r *http.Request) {
	doc := struct {
		Ops           []OpSnapshot   `json:"ops"`
		Vars          map[string]any `json:"vars,omitempty"`
		SlowThreshold string         `json:"slow_threshold"`
	}{
		Ops:           t.Metrics(),
		SlowThreshold: t.SlowThreshold().String(),
	}
	t.vars.Range(func(k, v any) bool {
		if doc.Vars == nil {
			doc.Vars = make(map[string]any)
		}
		doc.Vars[k.(string)] = v.(func() any)()
		return true
	})
	writeJSON(w, doc)
}

func (t *Tracer) serveTrace(w http.ResponseWriter, r *http.Request) {
	var spans []SpanRecord
	if id := r.URL.Query().Get("trace"); id != "" {
		spans = t.TraceSpans(id)
	} else {
		spans = t.Spans()
	}
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(spans) {
			spans = spans[len(spans)-n:]
		}
	}
	writeSpans(w, spans)
}

func (t *Tracer) serveSlow(w http.ResponseWriter, r *http.Request) {
	writeSpans(w, t.SlowCalls())
}

// spanJSON renders one span with a human-readable duration next to the
// nanosecond count.
type spanJSON struct {
	SpanRecord
	DurationText string `json:"duration"`
}

func writeSpans(w http.ResponseWriter, spans []SpanRecord) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	out := make([]spanJSON, len(spans))
	for i, s := range spans {
		out[i] = spanJSON{SpanRecord: s, DurationText: s.Duration.String()}
	}
	writeJSON(w, struct {
		Spans []spanJSON `json:"spans"`
	}{out})
}
