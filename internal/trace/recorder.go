package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configure a Tracer.
type Options struct {
	// Capacity bounds the span ring buffer (default 2048). The recorder keeps
	// the most recent Capacity finished spans; older spans are overwritten.
	Capacity int
	// SlowCapacity bounds the slow-call ring buffer (default 256).
	SlowCapacity int
	// SlowThreshold marks spans at or above this duration as slow calls,
	// keeping them in a dedicated ring and reporting them through SlowLog.
	// 0 disables the slow-call log.
	SlowThreshold time.Duration
	// SlowLog, when set, receives one formatted line per slow call.
	SlowLog func(format string, args ...any)
}

// Tracer aggregates finished spans: a bounded ring of recent spans, a bounded
// ring of slow calls, and per-operation counters + latency histograms keyed
// by span name. All methods are safe for concurrent use.
type Tracer struct {
	spans   *ring
	slow    *ring
	slowNS  atomic.Int64
	slowLog atomic.Pointer[func(format string, args ...any)]
	ops     sync.Map // span name -> *opMetrics
	vars    sync.Map // name -> func() any, extra /debug/metrics publishers
}

// New creates a Tracer.
func New(o Options) *Tracer {
	if o.Capacity <= 0 {
		o.Capacity = 2048
	}
	if o.SlowCapacity <= 0 {
		o.SlowCapacity = 256
	}
	t := &Tracer{spans: newRing(o.Capacity), slow: newRing(o.SlowCapacity)}
	t.slowNS.Store(int64(o.SlowThreshold))
	if o.SlowLog != nil {
		f := o.SlowLog
		t.slowLog.Store(&f)
	}
	return t
}

var defaultTracer = New(Options{})

// Default returns the process-wide tracer, used when a span is started
// without an explicit tracer in scope (like the expvar default var set).
func Default() *Tracer { return defaultTracer }

// SetSlowThreshold adjusts the slow-call threshold (0 disables).
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNS.Store(int64(d)) }

// SlowThreshold returns the current slow-call threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNS.Load()) }

// SetSlowLog installs the slow-call log sink (nil silences it).
func (t *Tracer) SetSlowLog(f func(format string, args ...any)) {
	if f == nil {
		t.slowLog.Store(nil)
		return
	}
	t.slowLog.Store(&f)
}

// Publish registers a named callback whose value is included in the
// /debug/metrics document (expvar-style). Re-publishing a name replaces it.
func (t *Tracer) Publish(name string, fn func() any) { t.vars.Store(name, fn) }

// record files one finished span. Called by Span.End.
func (t *Tracer) record(rec spanRec) {
	t.spans.add(rec)
	t.opFor(rec.name).observe(rec.duration, rec.err != "")
	if thr := t.slowNS.Load(); thr > 0 && rec.duration >= time.Duration(thr) {
		t.slow.add(rec)
		if pf := t.slowLog.Load(); pf != nil {
			(*pf)("trace: slow call %s took %v (trace %s, threshold %v)",
				rec.name, rec.duration, rec.trace, time.Duration(thr))
		}
	}
}

func (t *Tracer) opFor(name string) *opMetrics {
	if m, ok := t.ops.Load(name); ok {
		return m.(*opMetrics)
	}
	m, _ := t.ops.LoadOrStore(name, newOpMetrics())
	return m.(*opMetrics)
}

// Spans returns the recorded spans, oldest first.
func (t *Tracer) Spans() []SpanRecord { return export(t.spans.snapshot()) }

// TraceSpans returns the recorded spans of one trace (hex ID), oldest first.
func (t *Tracer) TraceSpans(traceID string) []SpanRecord {
	all := t.spans.snapshot()
	out := all[:0:0]
	for _, rec := range all {
		if rec.trace.String() == traceID {
			out = append(out, rec)
		}
	}
	return export(out)
}

// SlowCalls returns the recorded slow calls, oldest first.
func (t *Tracer) SlowCalls() []SpanRecord { return export(t.slow.snapshot()) }

// export renders ring records into the public hex-string form.
func export(recs []spanRec) []SpanRecord {
	out := make([]SpanRecord, len(recs))
	for i, rec := range recs {
		out[i] = rec.export()
	}
	return out
}

// Reset clears the rings and the per-operation metrics (tests, benchmarks).
func (t *Tracer) Reset() {
	t.spans.reset()
	t.slow.reset()
	t.ops.Range(func(k, _ any) bool {
		t.ops.Delete(k)
		return true
	})
}

// ---- ring buffer ----

type ring struct {
	mu   sync.Mutex
	buf  []spanRec
	next int
	full bool
}

func newRing(n int) *ring { return &ring{buf: make([]spanRec, n)} }

func (r *ring) add(rec spanRec) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// snapshot copies the ring contents, oldest first.
func (r *ring) snapshot() []spanRec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]spanRec(nil), r.buf[:r.next]...)
	}
	out := make([]spanRec, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

func (r *ring) reset() {
	r.mu.Lock()
	r.next = 0
	r.full = false
	for i := range r.buf {
		r.buf[i] = spanRec{}
	}
	r.mu.Unlock()
}

// ---- per-operation metrics ----

// bucketBounds are the histogram's upper bounds. They span the latencies this
// system produces (sub-µs colocated calls to multi-ms WAN-like members); the
// last bucket is open-ended.
var bucketBounds = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 500 * time.Millisecond, 1 * time.Second,
}

type opMetrics struct {
	count   atomic.Int64
	errors  atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets []atomic.Int64 // len(bucketBounds)+1, last is +Inf
}

func newOpMetrics() *opMetrics {
	return &opMetrics{buckets: make([]atomic.Int64, len(bucketBounds)+1)}
}

func (m *opMetrics) observe(d time.Duration, failed bool) {
	m.count.Add(1)
	if failed {
		m.errors.Add(1)
	}
	ns := int64(d)
	m.sumNS.Add(ns)
	for {
		max := m.maxNS.Load()
		if ns <= max || m.maxNS.CompareAndSwap(max, ns) {
			break
		}
	}
	i := sort.Search(len(bucketBounds), func(i int) bool { return d <= bucketBounds[i] })
	m.buckets[i].Add(1)
}

// HistogramBucket is one histogram cell of a metrics snapshot.
type HistogramBucket struct {
	Le    string `json:"le"` // upper bound ("+Inf" for the last)
	Count int64  `json:"count"`
}

// OpSnapshot is the point-in-time state of one operation's metrics.
type OpSnapshot struct {
	Op        string            `json:"op"`
	Count     int64             `json:"count"`
	Errors    int64             `json:"errors"`
	MeanNS    int64             `json:"mean_ns"`
	MaxNS     int64             `json:"max_ns"`
	Histogram []HistogramBucket `json:"histogram"`
}

// Metrics returns a snapshot of every operation's counters and histogram,
// sorted by operation name. Counters are loaded individually, so a snapshot
// taken under load is consistent per counter, not across counters.
func (t *Tracer) Metrics() []OpSnapshot {
	var out []OpSnapshot
	t.ops.Range(func(k, v any) bool {
		m := v.(*opMetrics)
		s := OpSnapshot{
			Op:     k.(string),
			Count:  m.count.Load(),
			Errors: m.errors.Load(),
			MaxNS:  m.maxNS.Load(),
		}
		if s.Count > 0 {
			s.MeanNS = m.sumNS.Load() / s.Count
		}
		for i := range m.buckets {
			if n := m.buckets[i].Load(); n > 0 {
				le := "+Inf"
				if i < len(bucketBounds) {
					le = bucketBounds[i].String()
				}
				s.Histogram = append(s.Histogram, HistogramBucket{Le: le, Count: n})
			}
		}
		out = append(out, s)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}
