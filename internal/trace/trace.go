// Package trace is the reproduction's observability layer, modeled on CORBA
// Portable Interceptors and their service-context propagation: a span records
// one timed operation, spans share a trace ID across process, ORB and servant
// boundaries (the ORB's request interceptors carry the span context in a
// dedicated GIOP service context entry), and a Tracer aggregates finished
// spans into a ring buffer, per-operation latency histograms and a slow-call
// log. The paper's communication layer "mediates requests" between four
// layers; this package makes that mediation visible end to end.
package trace

import (
	"context"
	"encoding/hex"
	mrand "math/rand/v2"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request tree across every ORB hop.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as lower-case hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as lower-case hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		putUint64(id[0:8], mrand.Uint64())
		putUint64(id[8:16], mrand.Uint64())
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		putUint64(id[:], mrand.Uint64())
	}
	return id
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// SpanContext is the propagated part of a span: enough to parent remote
// children onto the same trace. It is what crosses the wire inside the
// tracing service context entry.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// IsValid reports whether the context names a real trace.
func (sc SpanContext) IsValid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// encodedLen is the wire size of a span context (16-byte trace + 8-byte span).
const encodedLen = 24

// Encode packs the context for a giop.ServiceContext entry.
func (sc SpanContext) Encode() []byte {
	out := make([]byte, encodedLen)
	copy(out[0:16], sc.Trace[:])
	copy(out[16:24], sc.Span[:])
	return out
}

// DecodeSpanContext unpacks a context encoded by Encode. It rejects payloads
// of the wrong size or with a zero trace ID, so a foreign ORB's unrelated
// service context entry cannot corrupt a trace.
func DecodeSpanContext(b []byte) (SpanContext, bool) {
	if len(b) != encodedLen {
		return SpanContext{}, false
	}
	var sc SpanContext
	copy(sc.Trace[:], b[0:16])
	copy(sc.Span[:], b[16:24])
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one in-progress timed operation. A span belongs to the goroutine
// that started it: SetAttr and End must not race with each other. End is
// idempotent and publishes the finished record to the span's tracer.
type Span struct {
	tracer *Tracer
	name   string
	sc     SpanContext
	parent SpanID
	start  time.Time
	attrs  []Attr
	// attrsArr backs attrs for the common small-span case (most spans carry
	// one or two attributes) so SetAttr does not allocate; attrs spills to
	// the heap only past its capacity. The finished record aliases it, which
	// is safe: SetAttr no-ops once the span has ended.
	attrsArr [2]Attr
	ended    atomic.Bool
}

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Name returns the operation name the span was started with.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr annotates the span. It is a no-op on a nil or ended span.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.ended.Load() {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value. It is a no-op on a
// nil or ended span.
func (s *Span) SetAttrInt(key string, value int) {
	if s == nil || s.ended.Load() {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.Itoa(value)})
}

// End finishes the span, recording its duration (and err, if any) into the
// tracer's ring buffer, metrics and slow-call log. Only the first End counts.
func (s *Span) End(err error) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	rec := spanRec{
		trace:    s.sc.Trace,
		span:     s.sc.Span,
		parent:   s.parent,
		name:     s.name,
		attrs:    s.attrs,
		start:    s.start,
		duration: time.Since(s.start),
	}
	if err != nil {
		rec.err = err.Error()
	}
	s.tracer.record(rec)
}

// spanRec is the ring buffer's representation of a finished span. IDs stay in
// their binary form so the hot path (End on every span) never pays for hex
// formatting; export renders the public SpanRecord when a snapshot is read.
type spanRec struct {
	trace    TraceID
	span     SpanID
	parent   SpanID
	name     string
	attrs    []Attr
	start    time.Time
	duration time.Duration
	err      string
}

func (r spanRec) export() SpanRecord {
	rec := SpanRecord{
		Trace:    r.trace.String(),
		Span:     r.span.String(),
		Name:     r.name,
		Attrs:    r.attrs,
		Start:    r.start,
		Duration: r.duration,
		Err:      r.err,
	}
	if !r.parent.IsZero() {
		rec.Parent = r.parent.String()
	}
	return rec
}

// SpanRecord is one finished span as kept by the recorder and served by the
// /debug/trace endpoint. IDs are hex strings so records marshal cleanly.
type SpanRecord struct {
	Trace    string        `json:"trace"`
	Span     string        `json:"span"`
	Parent   string        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// ---- Context plumbing ----

type ctxKey int

const (
	spanKey ctxKey = iota
	remoteKey
)

// ContextWithSpan returns a context carrying the span as the active parent.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ContextWithRemote returns a context carrying a span context received from a
// remote caller (decoded from the tracing service context by the server-side
// request interceptor). Spans started under it join the remote trace.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteKey, sc)
}

// RemoteFromContext returns the remote span context, if any.
func RemoteFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteKey).(SpanContext)
	return sc, ok && sc.IsValid()
}

// SpanContextOf returns the propagation context an outgoing request should
// carry: the active local span if one exists, else the remote parent.
func SpanContextOf(ctx context.Context) (SpanContext, bool) {
	if s := SpanFromContext(ctx); s != nil {
		return s.sc, true
	}
	return RemoteFromContext(ctx)
}

// StartSpan starts a span named after an operation. The parent is the active
// span in ctx (same trace, same tracer); failing that, a remote span context
// placed by a server interceptor (same trace, default tracer); failing that,
// a fresh trace on the default tracer. The returned context carries the new
// span as the active parent for further calls.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return startSpan(ctx, nil, name)
}

// StartSpan starts a span recorded by this tracer regardless of which tracer
// owns the parent; parenting and trace-ID inheritance follow StartSpan.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return startSpan(ctx, t, name)
}

func startSpan(ctx context.Context, t *Tracer, name string) (context.Context, *Span) {
	var parent SpanContext
	if sp := SpanFromContext(ctx); sp != nil {
		parent = sp.sc
		if t == nil {
			t = sp.tracer
		}
	} else if rc, ok := RemoteFromContext(ctx); ok {
		parent = rc
	}
	if t == nil {
		t = Default()
	}
	sc := SpanContext{Trace: parent.Trace, Span: newSpanID()}
	if sc.Trace.IsZero() {
		sc.Trace = newTraceID()
	}
	sp := &Span{tracer: t, name: name, sc: sc, parent: parent.Span, start: time.Now()}
	sp.attrs = sp.attrsArr[:0]
	return ContextWithSpan(ctx, sp), sp
}
