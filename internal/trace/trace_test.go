package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSpanParentingAndRecording(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.StartSpan(context.Background(), "root")
	if root.Context().Trace.IsZero() || root.Context().Span.IsZero() {
		t.Fatal("root span has zero IDs")
	}
	ctx2, child := StartSpan(ctx, "child") // package fn inherits tracer via ctx
	if child.Context().Trace != root.Context().Trace {
		t.Errorf("child trace %s != root trace %s", child.Context().Trace, root.Context().Trace)
	}
	_, grand := StartSpan(ctx2, "grandchild")
	grand.SetAttr("k", "v")
	grand.End(errors.New("boom"))
	child.End(nil)
	root.End(nil)

	spans := tr.TraceSpans(root.Context().Trace.String())
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != root.Context().Span.String() {
		t.Errorf("child parent = %s, want %s", byName["child"].Parent, root.Context().Span)
	}
	if byName["grandchild"].Parent != byName["child"].Span {
		t.Errorf("grandchild parent = %s, want %s", byName["grandchild"].Parent, byName["child"].Span)
	}
	if byName["grandchild"].Err != "boom" {
		t.Errorf("grandchild err = %q", byName["grandchild"].Err)
	}
	if len(byName["grandchild"].Attrs) != 1 || byName["grandchild"].Attrs[0].Value != "v" {
		t.Errorf("grandchild attrs = %v", byName["grandchild"].Attrs)
	}
}

func TestRemoteParenting(t *testing.T) {
	tr := New(Options{})
	_, client := tr.StartSpan(context.Background(), "client")
	defer client.End(nil)

	// Simulate the wire: encode on the caller, decode on the servant side.
	sc, ok := DecodeSpanContext(client.Context().Encode())
	if !ok {
		t.Fatal("round-trip decode failed")
	}
	if sc != client.Context() {
		t.Fatalf("decoded %+v != original %+v", sc, client.Context())
	}
	ctx := ContextWithRemote(context.Background(), sc)
	_, server := tr.StartSpan(ctx, "server")
	server.End(nil)
	if got := server.Context().Trace; got != client.Context().Trace {
		t.Errorf("server trace %s, want client's %s", got, client.Context().Trace)
	}
	recs := tr.TraceSpans(client.Context().Trace.String())
	if len(recs) != 1 || recs[0].Parent != client.Context().Span.String() {
		t.Errorf("server record parent = %v", recs)
	}
}

func TestDecodeSpanContextRejectsGarbage(t *testing.T) {
	if _, ok := DecodeSpanContext(nil); ok {
		t.Error("decoded nil")
	}
	if _, ok := DecodeSpanContext(make([]byte, 23)); ok {
		t.Error("decoded short payload")
	}
	if _, ok := DecodeSpanContext(make([]byte, 24)); ok {
		t.Error("decoded all-zero payload")
	}
}

func TestEndIdempotentAndNilSafe(t *testing.T) {
	tr := New(Options{})
	_, sp := tr.StartSpan(context.Background(), "once")
	sp.End(nil)
	sp.End(errors.New("second End must not record"))
	if got := len(tr.Spans()); got != 1 {
		t.Errorf("recorded %d spans, want 1", got)
	}
	var nilSpan *Span
	nilSpan.SetAttr("a", "b") // must not panic
	nilSpan.End(nil)
	if nilSpan.Context().IsValid() {
		t.Error("nil span has a valid context")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(Options{Capacity: 4})
	for i := 0; i < 7; i++ {
		_, sp := tr.StartSpan(context.Background(), fmt.Sprintf("op-%d", i))
		sp.End(nil)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	if spans[0].Name != "op-3" || spans[3].Name != "op-6" {
		t.Errorf("ring order = %s..%s, want op-3..op-6", spans[0].Name, spans[3].Name)
	}
}

func TestMetricsHistogramAndErrors(t *testing.T) {
	tr := New(Options{})
	for i := 0; i < 5; i++ {
		_, sp := tr.StartSpan(context.Background(), "op")
		var err error
		if i == 0 {
			err = errors.New("fail")
		}
		sp.End(err)
	}
	ms := tr.Metrics()
	if len(ms) != 1 {
		t.Fatalf("metrics = %v", ms)
	}
	m := ms[0]
	if m.Op != "op" || m.Count != 5 || m.Errors != 1 {
		t.Errorf("op=%s count=%d errors=%d", m.Op, m.Count, m.Errors)
	}
	var total int64
	for _, b := range m.Histogram {
		total += b.Count
	}
	if total != 5 {
		t.Errorf("histogram total = %d, want 5", total)
	}
	if m.MaxNS < m.MeanNS {
		t.Errorf("max %d < mean %d", m.MaxNS, m.MeanNS)
	}
}

func TestSlowCallLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	tr := New(Options{
		SlowThreshold: time.Microsecond,
		SlowLog: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	_, fast := tr.StartSpan(context.Background(), "fast")
	fast.End(nil) // sub-µs on any machine this runs on? not guaranteed — use threshold below
	tr.SetSlowThreshold(time.Nanosecond)
	_, slow := tr.StartSpan(context.Background(), "slow")
	time.Sleep(time.Millisecond)
	slow.End(nil)
	found := false
	for _, s := range tr.SlowCalls() {
		if s.Name == "slow" {
			found = true
		}
	}
	if !found {
		t.Error("slow span missing from slow-call ring")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Error("slow-call log sink got no lines")
	}
	tr.SetSlowThreshold(0)
	_, off := tr.StartSpan(context.Background(), "off")
	time.Sleep(time.Millisecond)
	off.End(nil)
	for _, s := range tr.SlowCalls() {
		if s.Name == "off" {
			t.Error("slow log recorded with threshold disabled")
		}
	}
}

func TestConcurrentSpansRaceClean(t *testing.T) {
	tr := New(Options{Capacity: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, sp := tr.StartSpan(context.Background(), "root")
				_, child := StartSpan(ctx, "child")
				child.SetAttr("g", fmt.Sprint(g))
				child.End(nil)
				sp.End(nil)
			}
		}(g)
	}
	wg.Wait()
	ms := tr.Metrics()
	var count int64
	for _, m := range ms {
		count += m.Count
	}
	if count != 8*50*2 {
		t.Errorf("recorded %d spans, want %d", count, 8*50*2)
	}
}

func TestDebugEndpoints(t *testing.T) {
	tr := New(Options{SlowThreshold: time.Nanosecond})
	tr.Publish("answer", func() any { return 42 })
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := StartSpan(ctx, "child")
	time.Sleep(100 * time.Microsecond)
	child.End(nil)
	root.End(nil)
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("%s content-type = %s", path, ct)
		}
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return doc
	}

	metrics := get("/debug/metrics")
	if ops, ok := metrics["ops"].([]any); !ok || len(ops) != 2 {
		t.Errorf("metrics ops = %v", metrics["ops"])
	}
	vars, _ := metrics["vars"].(map[string]any)
	if vars["answer"] != float64(42) {
		t.Errorf("published var = %v", vars["answer"])
	}

	all := get("/debug/trace")
	if spans, ok := all["spans"].([]any); !ok || len(spans) != 2 {
		t.Errorf("trace spans = %v", all["spans"])
	}
	one := get("/debug/trace?trace=" + root.Context().Trace.String() + "&n=1")
	if spans, _ := one["spans"].([]any); len(spans) != 1 {
		t.Errorf("filtered spans = %v", one["spans"])
	}
	none := get("/debug/trace?trace=deadbeef")
	if spans, _ := none["spans"].([]any); len(spans) != 0 {
		t.Errorf("bogus trace returned spans: %v", none["spans"])
	}
	slow := get("/debug/trace/slow")
	if spans, _ := slow["spans"].([]any); len(spans) != 2 {
		t.Errorf("slow spans = %v", slow["spans"])
	}
}
