// Package wtl implements the WebTassili language: the special-purpose query
// language WebFINDIT users speak. It covers every construct the paper uses
// (§2.3, §5): information-space education (Find Coalitions, Display
// SubClasses/Instances/Documentation/Access Information/Interface),
// connection management (Connect To Coalition), typed data access (exported
// function invocation with a predicate, translated to SQL), native queries,
// and information-space maintenance (Create Coalition, Create Service Link,
// Join/Leave Coalition).
package wtl

import (
	"fmt"
	"strings"
)

// Stmt is any parsed WebTassili statement.
type Stmt interface {
	stmt()
	String() string
}

// FindCoalitions is `Find Coalitions With Information <topic>;`.
type FindCoalitions struct {
	Topic string
}

func (*FindCoalitions) stmt() {}
func (s *FindCoalitions) String() string {
	return fmt.Sprintf("Find Coalitions With Information %s;", s.Topic)
}

// Connect is `Connect To Coalition <name>;`.
type Connect struct {
	Coalition string
}

func (*Connect) stmt() {}
func (s *Connect) String() string {
	return fmt.Sprintf("Connect To Coalition %s;", s.Coalition)
}

// DisplaySubClasses is `Display SubClasses Of Class <name>;`.
type DisplaySubClasses struct {
	Class string
}

func (*DisplaySubClasses) stmt() {}
func (s *DisplaySubClasses) String() string {
	return fmt.Sprintf("Display SubClasses Of Class %s;", s.Class)
}

// DisplayInstances is `Display Instances Of Class <name>;`.
type DisplayInstances struct {
	Class string
}

func (*DisplayInstances) stmt() {}
func (s *DisplayInstances) String() string {
	return fmt.Sprintf("Display Instances Of Class %s;", s.Class)
}

// DisplayDocument is `Display Document[ation] Of Instance <name> [Of Class
// <name>];`.
type DisplayDocument struct {
	Instance string
	Class    string // optional
}

func (*DisplayDocument) stmt() {}
func (s *DisplayDocument) String() string {
	if s.Class != "" {
		return fmt.Sprintf("Display Document Of Instance %s Of Class %s;", s.Instance, s.Class)
	}
	return fmt.Sprintf("Display Document Of Instance %s;", s.Instance)
}

// DisplayAccessInfo is `Display Access Information Of Instance <name>;`.
type DisplayAccessInfo struct {
	Instance string
}

func (*DisplayAccessInfo) stmt() {}
func (s *DisplayAccessInfo) String() string {
	return fmt.Sprintf("Display Access Information Of Instance %s;", s.Instance)
}

// DisplayInterface is `Display Interface Of Instance <name>;`.
type DisplayInterface struct {
	Instance string
}

func (*DisplayInterface) stmt() {}
func (s *DisplayInterface) String() string {
	return fmt.Sprintf("Display Interface Of Instance %s;", s.Instance)
}

// DisplayCoalitions is `Display Coalitions;` — list the coalitions known in
// the session's current context (user education).
type DisplayCoalitions struct{}

func (*DisplayCoalitions) stmt()          {}
func (*DisplayCoalitions) String() string { return "Display Coalitions;" }

// DisplayLinks is `Display Service Links;` — list the service links known in
// the session's current context.
type DisplayLinks struct{}

func (*DisplayLinks) stmt()          {}
func (*DisplayLinks) String() string { return "Display Service Links;" }

// Member is one `attribute <type> <name>` of a structural search.
type Member struct {
	Type string
	Name string
}

// SearchType is `Search Type <name> [With Structure (attribute <type>
// <name>; ...)];` — find sources exporting a type by name, optionally
// requiring the named attributes (the paper's "search for an information
// type while providing its structure").
type SearchType struct {
	TypeName  string
	Structure []Member
}

func (*SearchType) stmt() {}
func (s *SearchType) String() string {
	if len(s.Structure) == 0 {
		return fmt.Sprintf("Search Type %s;", s.TypeName)
	}
	parts := make([]string, len(s.Structure))
	for i, m := range s.Structure {
		parts[i] = fmt.Sprintf("attribute %s %s;", m.Type, m.Name)
	}
	return fmt.Sprintf("Search Type %s With Structure (%s);", s.TypeName, strings.Join(parts, " "))
}

// Condition is one `<column> <op> <literal>` predicate conjunct.
type Condition struct {
	Column string // qualified, e.g. "ResearchProjects.Title"
	Op     string // = <> < <= > >= LIKE
	Value  string // literal text (numbers kept as text; the wrapper types them)
	IsStr  bool   // literal was quoted
}

func (c Condition) String() string {
	v := c.Value
	if c.IsStr {
		v = `"` + v + `"`
	}
	return fmt.Sprintf("%s %s %s", c.Column, c.Op, v)
}

// SemiJoin is the join clause of a coalition function query: a second
// coalition function query whose result values restrict the outer side.
// `A(R.K) On Coalition X SemiJoin B(R.K2, (...)) On Coalition Y;` answers
// with the outer rows whose result value also appears among B's results —
// the cross-member correlation the paper's coalitions exist for, planned as
// a semi-join so only keys (never whole rows) cross the coordinator twice.
// The joined side never carries its own Limit: it is a filter, not an
// answer.
type SemiJoin struct {
	Function string
	ArgCol   string
	Preds    []Condition
	Source   string // coalition name; join sides are always coalition-wide
}

// String renders the clause without the statement terminator, matching the
// outer FuncQuery's print shape so the whole statement stays a parse fixed
// point.
func (j *SemiJoin) String() string {
	out := fmt.Sprintf("%s(%s)", j.Function, j.ArgCol)
	if len(j.Preds) > 0 {
		preds := make([]string, len(j.Preds))
		for i, p := range j.Preds {
			preds[i] = p.String()
		}
		out = fmt.Sprintf("%s(%s, (%s))", j.Function, j.ArgCol, strings.Join(preds, " AND "))
	}
	return out + " On Coalition " + j.Source
}

// FuncQuery is the paper's typed data access: an exported-function
// invocation with a predicate, e.g.
//
//	Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs")) On Royal Brisbane Hospital;
//
// The On clause names the target source; `On Coalition <name>` decomposes
// the query over every coalition member exporting the function (the paper's
// "the query is decomposed if needed"). With no On clause the session's
// current source is used.
type FuncQuery struct {
	Function    string
	ArgCol      string // the column the predicate constrains
	Preds       []Condition
	Source      string // optional
	OnCoalition bool   // Source names a coalition to fan out over
	// Join, when set, restricts the answer to rows whose result value also
	// appears in the joined query's results (`... SemiJoin F(C) On
	// Coalition Y ...`). Only valid on coalition queries.
	Join *SemiJoin
	// Limit caps the merged result at N rows (`... Limit N;`). 0 means no
	// limit. On a coalition query the planner pushes the limit into member
	// fragments where the dialect accepts it and terminates the fan-out
	// early once N rows are merged.
	Limit int
}

func (*FuncQuery) stmt() {}
func (s *FuncQuery) String() string {
	out := fmt.Sprintf("%s(%s)", s.Function, s.ArgCol)
	if len(s.Preds) > 0 {
		preds := make([]string, len(s.Preds))
		for i, p := range s.Preds {
			preds[i] = p.String()
		}
		out = fmt.Sprintf("%s(%s, (%s))", s.Function, s.ArgCol, strings.Join(preds, " AND "))
	}
	if s.Source != "" {
		if s.OnCoalition {
			out += " On Coalition " + s.Source
		} else {
			out += " On " + s.Source
		}
	}
	if s.Join != nil {
		out += " SemiJoin " + s.Join.String()
	}
	if s.Limit > 0 {
		out += fmt.Sprintf(" Limit %d", s.Limit)
	}
	return out + ";"
}

// NativeQuery is `Query <source> Using Native "<text>";` — the paper's
// "directly using native query languages of the underlying databases".
type NativeQuery struct {
	Source string
	Text   string
}

func (*NativeQuery) stmt() {}
func (s *NativeQuery) String() string {
	return fmt.Sprintf("Query %s Using Native %q;", s.Source, s.Text)
}

// CreateCoalition is `Create Coalition <name> [Under <parent>] [Description
// "<text>"];` — information-space definition.
type CreateCoalition struct {
	Name        string
	Parent      string
	Description string
}

func (*CreateCoalition) stmt() {}
func (s *CreateCoalition) String() string {
	out := "Create Coalition " + s.Name
	if s.Parent != "" {
		out += " Under " + s.Parent
	}
	if s.Description != "" {
		out += fmt.Sprintf(" Description %q", s.Description)
	}
	return out + ";"
}

// CreateLink is `Create Service Link <name> From coalition|database <a> To
// coalition|database <b> [Information "<topic>"];`.
type CreateLink struct {
	Name     string
	FromKind string // "coalition" or "database"
	From     string
	ToKind   string
	To       string
	InfoType string
}

func (*CreateLink) stmt() {}
func (s *CreateLink) String() string {
	out := fmt.Sprintf("Create Service Link %s From %s %s To %s %s",
		s.Name, s.FromKind, s.From, s.ToKind, s.To)
	if s.InfoType != "" {
		out += fmt.Sprintf(" Information %q", s.InfoType)
	}
	return out + ";"
}

// JoinCoalition is `Join Coalition <name>;` — advertise the session's home
// database into a coalition.
type JoinCoalition struct {
	Coalition string
}

func (*JoinCoalition) stmt() {}
func (s *JoinCoalition) String() string {
	return fmt.Sprintf("Join Coalition %s;", s.Coalition)
}

// LeaveCoalition is `Leave Coalition <name>;`.
type LeaveCoalition struct {
	Coalition string
}

func (*LeaveCoalition) stmt() {}
func (s *LeaveCoalition) String() string {
	return fmt.Sprintf("Leave Coalition %s;", s.Coalition)
}
