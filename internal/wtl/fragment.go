package wtl

import (
	"fmt"
	"strings"
)

// Fragment is the single-table retrieval the federated planner ships to one
// coalition member: the projected columns the coordinator needs back, the
// predicate conjuncts the member's dialect can evaluate, and an optional row
// limit. Conditions here are already resolved to bare column names (no
// exported-type qualifier); the planner does that resolution against the
// member's exported function before building the fragment.
//
// A fragment renders to either dialect family the federation speaks: SQL()
// for the relational engines (Oracle, mSQL, DB2, Sybase) and OQL() for the
// object engines (ObjectStore, Ontos). Both renderers are deliberately dumb:
// they print exactly what they are given, so a fragment that exceeds the
// target's capabilities fails loudly at the engine rather than silently
// dropping a clause.
type Fragment struct {
	Table   string
	Columns []string    // projection, in fetch order; never empty
	Conds   []Condition // pushed conjuncts, bare column names
	In      *InClause   // optional semi-join key restriction, one more conjunct
	Limit   int         // 0 means no limit clause
}

// KeyLiteral is one member of an IN list: the literal's text plus whether it
// renders quoted. The planner canonicalises build-side values into these.
type KeyLiteral struct {
	Text  string
	IsStr bool
}

// InClause is the semi-join key restriction the planner attaches to a probe
// fragment when the build side's key set is small enough to push: the probe
// column IN the build side's distinct result values. It renders as one more
// AND conjunct; an empty key list is a planner bug and renders invalid SQL
// on purpose rather than silently matching everything.
type InClause struct {
	Column string
	Keys   []KeyLiteral
}

func (in *InClause) render(b *strings.Builder, prefix string, first bool) {
	if first {
		b.WriteString(" WHERE ")
	} else {
		b.WriteString(" AND ")
	}
	b.WriteString(prefix)
	b.WriteString(in.Column)
	b.WriteString(" IN (")
	for i, k := range in.Keys {
		if i > 0 {
			b.WriteString(", ")
		}
		if k.IsStr {
			b.WriteString("'" + strings.ReplaceAll(k.Text, "'", "''") + "'")
		} else {
			b.WriteString(k.Text)
		}
	}
	b.WriteString(")")
}

// SQL renders the fragment in the relational family's shape, matching the
// paper's translation byte for byte in the single-column, no-limit case:
//
//	SELECT a.Funding FROM ResearchProjects a WHERE a.Title = 'AIDS and drugs'
func (f *Fragment) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, c := range f.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("a.")
		b.WriteString(c)
	}
	fmt.Fprintf(&b, " FROM %s a", f.Table)
	for i, p := range f.Conds {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "a.%s %s %s", p.Column, p.Op, SQLLiteral(p))
	}
	if f.In != nil {
		f.In.render(&b, "a.", len(f.Conds) == 0)
	}
	if f.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", f.Limit)
	}
	return b.String()
}

// OQL renders the fragment in the object family's OQL-lite:
//
//	SELECT Funding FROM ResearchProjects WHERE Title = 'AIDS and drugs'
//
// OQL has no LIMIT clause; a fragment carrying one still renders it so the
// engine rejects the query instead of the renderer masking a planner bug.
func (f *Fragment) OQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, c := range f.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c)
	}
	fmt.Fprintf(&b, " FROM %s", f.Table)
	for i, p := range f.Conds {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "%s %s %s", p.Column, p.Op, SQLLiteral(p))
	}
	if f.In != nil {
		f.In.render(&b, "", len(f.Conds) == 0)
	}
	if f.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", f.Limit)
	}
	return b.String()
}

// SQLLiteral renders a condition's literal for either dialect family:
// quoted with ” doubling when the WebTassili literal was a string, verbatim
// otherwise (numbers are kept textual; the engine types them).
func SQLLiteral(p Condition) string {
	if p.IsStr {
		return "'" + strings.ReplaceAll(p.Value, "'", "''") + "'"
	}
	return p.Value
}
