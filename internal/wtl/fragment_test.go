package wtl

import "testing"

func TestFragmentSQL(t *testing.T) {
	f := &Fragment{
		Table:   "ResearchProjects",
		Columns: []string{"Funding"},
		Conds: []Condition{
			{Column: "Title", Op: "=", Value: "AIDS and drugs", IsStr: true},
		},
	}
	// The paper's translation, byte for byte.
	want := "SELECT a.Funding FROM ResearchProjects a WHERE a.Title = 'AIDS and drugs'"
	if got := f.SQL(); got != want {
		t.Errorf("SQL() = %q, want %q", got, want)
	}
	// Multi-column projection, multiple conjuncts, limit, quote escaping.
	f = &Fragment{
		Table:   "r",
		Columns: []string{"v", "k"},
		Conds: []Condition{
			{Column: "k", Op: "LIKE", Value: "O'%", IsStr: true},
			{Column: "v", Op: ">=", Value: "10"},
		},
		Limit: 3,
	}
	want = "SELECT a.v, a.k FROM r a WHERE a.k LIKE 'O''%' AND a.v >= 10 LIMIT 3"
	if got := f.SQL(); got != want {
		t.Errorf("SQL() = %q, want %q", got, want)
	}
}

func TestFragmentOQL(t *testing.T) {
	f := &Fragment{
		Table:   "Callout",
		Columns: []string{"Hospital"},
		Conds: []Condition{
			{Column: "Suburb", Op: "=", Value: "Herston", IsStr: true},
		},
	}
	if got, want := f.OQL(), "SELECT Hospital FROM Callout WHERE Suburb = 'Herston'"; got != want {
		t.Errorf("OQL() = %q, want %q", got, want)
	}
	// No conditions: no WHERE. A limit still renders (OQL has no LIMIT, so
	// the engine rejects it loudly instead of the renderer hiding the bug).
	f = &Fragment{Table: "r", Columns: []string{"v", "k"}, Limit: 2}
	if got, want := f.OQL(), "SELECT v, k FROM r LIMIT 2"; got != want {
		t.Errorf("OQL() = %q, want %q", got, want)
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := SQLLiteral(Condition{Value: "it's", IsStr: true}); got != "'it''s'" {
		t.Errorf("string literal = %q", got)
	}
	if got := SQLLiteral(Condition{Value: "42"}); got != "42" {
		t.Errorf("numeric literal = %q", got)
	}
}
