package wtl

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzWTLParse feeds arbitrary statement text to the WebTassili parser:
// hostile input must produce a statement or an error, never a panic. For
// inputs that parse, the rendered form must be a fixed point — String()
// reparses to a statement that renders identically — so the printer and the
// parser cannot drift apart.
func FuzzWTLParse(f *testing.F) {
	seeds := []string{
		"Find Coalitions With Information Medical Research;",
		"Connect To Coalition Research;",
		"Display Coalitions;",
		"Display Service Links;",
		"Display SubClasses of Class Research;",
		"Display Instances of Class Research;",
		"Display Document of Instance Royal Brisbane Hospital Of Class Research;",
		"Display Documentation of Instance Royal Brisbane Hospital;",
		"Display Access Information of Instance Royal Brisbane Hospital;",
		"Display Interface of Instance Royal Brisbane Hospital;",
		"Search Type PatientHistory;",
		"Create Coalition Superannuation;",
		"Join Coalition Medical;",
		"Leave Coalition Medical;",
		`V(R.K, (R.K = "a")) On Coalition Records;`,
		`History(P.Name, (P.Name = "Smith")) On Database RBH;`,
		// Semi-join clauses: plain, predicated, cross-coalition, limited.
		`V(R.K) On Coalition A SemiJoin W(R.V) On Coalition B;`,
		`V(R.K) On Coalition A SemiJoin W(R.V, (R.V >= 2)) On Coalition B Limit 3;`,
		`V(R.K, (R.K LIKE "k%")) On Coalition c0 SemiJoin K(R.V, (R.V = 7)) On Coalition c1;`,
		// A source whose name contains the word SemiJoin stays a name.
		`V(R.K) On SemiJoin Services;`,
		// Malformed join shapes the parser must reject gracefully.
		`V(R.K) SemiJoin W(R.V) On Coalition B;`,
		`V(R.K) On Coalition A SemiJoin W(R.V) On B;`,
		`V(R.K) On Coalition A SemiJoin W(R.V) On Coalition B SemiJoin X(R.K) On Coalition C;`,
		`V(R.K) On Coalition A SemiJoin W(;`,
		// Malformed shapes the parser must reject gracefully.
		"Find Coalitions Information x;",
		"Find Coalitions With Information ;",
		"Display Instances;",
		"V(R.K,;",
		"",
		";",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			if stmt != nil {
				t.Fatalf("Parse(%q) returned both statement and error %v", src, err)
			}
			return
		}
		if !utf8.ValidString(src) {
			// Rendering of mangled identifiers need not round-trip.
			return
		}
		first := stmt.String()
		again, err := Parse(first)
		if err != nil {
			t.Fatalf("rendered form does not reparse: %q -> %q: %v", src, first, err)
		}
		if second := again.String(); second != first {
			t.Fatalf("render not a fixed point:\n  src:    %q\n  first:  %q\n  second: %q",
				src, first, second)
		}
		if strings.TrimSpace(first) == "" {
			t.Fatalf("Parse(%q) succeeded but renders empty", src)
		}
	})
}
