package wtl

import "testing"

func TestFuncQueryLimit(t *testing.T) {
	// Limit after the coalition clause.
	s := parseOK(t, `V(R.K, (R.K = "a")) On Coalition Medical Limit 3;`)
	q := s.(*FuncQuery)
	if q.Limit != 3 || q.Source != "Medical" || !q.OnCoalition {
		t.Fatalf("limit query: %#v", q)
	}
	// Limit with no source clause at all.
	s = parseOK(t, `V(R.K) Limit 10;`)
	if q := s.(*FuncQuery); q.Limit != 10 || q.Source != "" {
		t.Fatalf("source-less limit: %#v", q)
	}
	// A source whose name contains the word Limit keeps parsing as a name:
	// only the trailing three-token shape (Limit, digits, end) is the clause.
	s = parseOK(t, `V(R.K) On Limit Hospital;`)
	if q := s.(*FuncQuery); q.Limit != 0 || q.Source != "Limit Hospital" {
		t.Fatalf("limit-in-name: %#v", q)
	}
	s = parseOK(t, `V(R.K) On Limit Hospital Limit 5;`)
	if q := s.(*FuncQuery); q.Limit != 5 || q.Source != "Limit Hospital" {
		t.Fatalf("limit-in-name with clause: %#v", q)
	}
	// No limit stays zero.
	if q := parseOK(t, `V(R.K) On Coalition Medical;`).(*FuncQuery); q.Limit != 0 {
		t.Fatalf("spurious limit: %#v", q)
	}
}

func TestFuncQueryLimitRoundTrip(t *testing.T) {
	for _, src := range []string{
		`V(R.K, (R.K = "a")) On Coalition Medical Limit 3;`,
		`V(R.K) Limit 10;`,
		`V(R.K) On Limit Hospital Limit 5;`,
		`Funding(ResearchProjects.Title, (ResearchProjects.Title LIKE "AIDS%" AND ResearchProjects.Funding > 100000)) On Coalition Research Limit 7;`,
	} {
		s1 := parseOK(t, src)
		s2 := parseOK(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round trip unstable:\n  %s\n  %s", s1, s2)
		}
		if s1.(*FuncQuery).Limit != s2.(*FuncQuery).Limit {
			t.Errorf("limit lost in round trip: %s", s1)
		}
	}
}

func TestFuncQueryLimitErrors(t *testing.T) {
	for _, src := range []string{
		`V(R.K) Limit 0;`,
		`V(R.K) Limit -1;`, // "-1" is not all digits: parses as a source error
		`V(R.K) On Coalition Medical Limit 99999999999999999999;`,
	} {
		if s, err := Parse(src); err == nil {
			t.Errorf("no error for %q (got %#v)", src, s)
		}
	}
}
