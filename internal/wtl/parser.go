package wtl

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// parserPool recycles parser state (chiefly the token slice) across Parse
// calls — the WTL gateway parses every inbound statement, so token arrays
// are the parser's dominant allocation. Parsed statements retain only
// strings, never tokens, so reuse cannot leak state between statements.
var (
	parserPool = sync.Pool{New: func() any {
		parserNews.Add(1)
		return &parser{}
	}}
	parserGets atomic.Uint64
	parserNews atomic.Uint64
)

// ParserPoolStats reports pooled-parser reuse: a hit is a Get served from
// the pool, a miss is a Get that had to allocate fresh state.
type ParserPoolStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// PoolStats snapshots the WTL parser pool counters.
func PoolStats() ParserPoolStats {
	gets, news := parserGets.Load(), parserNews.Load()
	return ParserPoolStats{Hits: gets - news, Misses: news}
}

// Parse parses one WebTassili statement (a trailing semicolon is optional,
// matching the paper's examples which are inconsistent about it). Keywords
// are case-insensitive; names may span several words, as in
// `Display Document Of Instance Royal Brisbane Hospital Of Class Research;`.
func Parse(src string) (Stmt, error) {
	parserGets.Add(1)
	p := parserPool.Get().(*parser)
	defer func() {
		clear(p.toks) // drop string references before pooling
		p.toks = p.toks[:0]
		p.pos = 0
		parserPool.Put(p)
	}()
	toks, err := lexInto(src, p.toks[:0])
	p.toks = toks
	if err != nil {
		return nil, err
	}
	p.pos = 0
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if t := p.peek(); t.kind != kEOF {
		return nil, fmt.Errorf("wtl: unexpected %q after statement", t.text)
	}
	return stmt, nil
}

type tkind byte

const (
	kEOF tkind = iota
	kWord
	kString
	kPunct
)

type tok struct {
	kind tkind
	text string
}

func lex(src string) ([]tok, error) {
	return lexInto(src, nil)
}

// lexInto tokenises into a caller-provided buffer (reset to length zero),
// letting pooled parsers reuse their token arrays across statements.
func lexInto(src string, toks []tok) ([]tok, error) {
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"' || c == '\'':
			quote := c
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("wtl: unterminated string literal")
				}
				if src[i] == quote {
					// Doubled quote escapes itself (the paper uses '' inside
					// string literals).
					if i+1 < len(src) && src[i+1] == quote {
						sb.WriteByte(quote)
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, tok{kString, sb.String()})
		case isWordChar(c):
			start := i
			for i < len(src) && isWordChar(src[i]) {
				i++
			}
			toks = append(toks, tok{kWord, src[start:i]})
		default:
			if i+1 < len(src) {
				two := src[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					toks = append(toks, tok{kPunct, two})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', ';', '=', '<', '>', '.':
				toks = append(toks, tok{kPunct, string(c)})
				i++
			default:
				return nil, fmt.Errorf("wtl: unexpected character %q", c)
			}
		}
	}
	return append(toks, tok{kind: kEOF}), nil
}

func isWordChar(c byte) bool {
	return c == '_' || c == '-' || c >= '0' && c <= '9' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok { return p.toks[p.pos] }

func (p *parser) next() tok {
	t := p.toks[p.pos]
	if t.kind != kEOF {
		p.pos++
	}
	return t
}

// acceptWord consumes a keyword (case-insensitive).
func (p *parser) acceptWord(w string) bool {
	t := p.peek()
	if t.kind == kWord && strings.EqualFold(t.text, w) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectWord(w string) error {
	if !p.acceptWord(w) {
		return fmt.Errorf("wtl: expected %q, got %q", w, p.peek().text)
	}
	return nil
}

func (p *parser) accept(text string) bool {
	if p.peek().text == text {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("wtl: expected %q, got %q", text, p.peek().text)
	}
	return nil
}

// name reads a multi-word name: a quoted string, or consecutive words until
// one of the stop keywords, ";" or EOF. Returns an error when empty.
func (p *parser) name(what string, stops ...string) (string, error) {
	if p.peek().kind == kString {
		return p.next().text, nil
	}
	stopSet := make(map[string]bool, len(stops))
	for _, s := range stops {
		stopSet[strings.ToLower(s)] = true
	}
	var words []string
	for {
		t := p.peek()
		if t.kind != kWord || stopSet[strings.ToLower(t.text)] {
			break
		}
		words = append(words, p.next().text)
	}
	if len(words) == 0 {
		return "", fmt.Errorf("wtl: expected %s, got %q", what, p.peek().text)
	}
	return strings.Join(words, " "), nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != kWord {
		return nil, fmt.Errorf("wtl: expected statement, got %q", t.text)
	}
	switch strings.ToLower(t.text) {
	case "find":
		p.next()
		if err := p.expectWord("Coalitions"); err != nil {
			return nil, err
		}
		if err := p.expectWord("With"); err != nil {
			return nil, err
		}
		if err := p.expectWord("Information"); err != nil {
			return nil, err
		}
		topic, err := p.name("information topic")
		if err != nil {
			return nil, err
		}
		return &FindCoalitions{Topic: topic}, nil
	case "connect":
		p.next()
		if err := p.expectWord("To"); err != nil {
			return nil, err
		}
		if err := p.expectWord("Coalition"); err != nil {
			return nil, err
		}
		name, err := p.name("coalition name")
		if err != nil {
			return nil, err
		}
		return &Connect{Coalition: name}, nil
	case "display":
		p.next()
		return p.parseDisplay()
	case "search":
		p.next()
		if err := p.expectWord("Type"); err != nil {
			return nil, err
		}
		name, err := p.name("type name", "With")
		if err != nil {
			return nil, err
		}
		st := &SearchType{TypeName: name}
		if p.acceptWord("With") {
			if err := p.expectWord("Structure"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for p.acceptWord("attribute") {
				typ := p.next()
				if typ.kind != kWord {
					return nil, fmt.Errorf("wtl: expected attribute type, got %q", typ.text)
				}
				col, err := p.qualifiedColumn()
				if err != nil {
					return nil, err
				}
				st.Structure = append(st.Structure, Member{Type: typ.text, Name: col})
				p.accept(";")
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if len(st.Structure) == 0 {
				return nil, fmt.Errorf("wtl: With Structure requires at least one attribute")
			}
		}
		return st, nil
	case "query":
		p.next()
		source, err := p.name("source name", "Using")
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("Using"); err != nil {
			return nil, err
		}
		if err := p.expectWord("Native"); err != nil {
			return nil, err
		}
		if p.peek().kind != kString {
			return nil, fmt.Errorf("wtl: expected quoted native query, got %q", p.peek().text)
		}
		return &NativeQuery{Source: source, Text: p.next().text}, nil
	case "create":
		p.next()
		return p.parseCreate()
	case "join":
		p.next()
		if err := p.expectWord("Coalition"); err != nil {
			return nil, err
		}
		name, err := p.name("coalition name")
		if err != nil {
			return nil, err
		}
		return &JoinCoalition{Coalition: name}, nil
	case "leave":
		p.next()
		if err := p.expectWord("Coalition"); err != nil {
			return nil, err
		}
		name, err := p.name("coalition name")
		if err != nil {
			return nil, err
		}
		return &LeaveCoalition{Coalition: name}, nil
	default:
		// Exported-function invocation: Word '(' ...
		if p.toks[p.pos+1].text == "(" {
			return p.parseFuncQuery()
		}
		return nil, fmt.Errorf("wtl: unknown statement starting with %q", t.text)
	}
}

func (p *parser) parseDisplay() (Stmt, error) {
	switch {
	case p.acceptWord("Coalitions"):
		return &DisplayCoalitions{}, nil
	case p.acceptWord("Service"):
		if err := p.expectWord("Links"); err != nil {
			return nil, err
		}
		return &DisplayLinks{}, nil
	case p.acceptWord("Links"):
		return &DisplayLinks{}, nil
	case p.acceptWord("SubClasses"):
		if err := p.expectWord("Of"); err != nil {
			return nil, err
		}
		if err := p.expectWord("Class"); err != nil {
			return nil, err
		}
		name, err := p.name("class name")
		if err != nil {
			return nil, err
		}
		return &DisplaySubClasses{Class: name}, nil
	case p.acceptWord("Instances"):
		if err := p.expectWord("Of"); err != nil {
			return nil, err
		}
		if err := p.expectWord("Class"); err != nil {
			return nil, err
		}
		name, err := p.name("class name")
		if err != nil {
			return nil, err
		}
		return &DisplayInstances{Class: name}, nil
	case p.acceptWord("Document") || p.acceptWord("Documentation"):
		if err := p.expectWord("Of"); err != nil {
			return nil, err
		}
		if err := p.expectWord("Instance"); err != nil {
			return nil, err
		}
		inst, err := p.name("instance name", "Of")
		if err != nil {
			return nil, err
		}
		d := &DisplayDocument{Instance: inst}
		if p.acceptWord("Of") {
			if err := p.expectWord("Class"); err != nil {
				return nil, err
			}
			cls, err := p.name("class name")
			if err != nil {
				return nil, err
			}
			d.Class = cls
		}
		return d, nil
	case p.acceptWord("Access"):
		if err := p.expectWord("Information"); err != nil {
			return nil, err
		}
		if err := p.expectWord("Of"); err != nil {
			return nil, err
		}
		if err := p.expectWord("Instance"); err != nil {
			return nil, err
		}
		inst, err := p.name("instance name")
		if err != nil {
			return nil, err
		}
		return &DisplayAccessInfo{Instance: inst}, nil
	case p.acceptWord("Interface"):
		if err := p.expectWord("Of"); err != nil {
			return nil, err
		}
		if err := p.expectWord("Instance"); err != nil {
			return nil, err
		}
		inst, err := p.name("instance name")
		if err != nil {
			return nil, err
		}
		return &DisplayInterface{Instance: inst}, nil
	}
	return nil, fmt.Errorf("wtl: expected SubClasses, Instances, Document, Access or Interface after Display, got %q", p.peek().text)
}

func (p *parser) parseCreate() (Stmt, error) {
	switch {
	case p.acceptWord("Coalition"):
		name, err := p.name("coalition name", "Under", "Description")
		if err != nil {
			return nil, err
		}
		c := &CreateCoalition{Name: name}
		if p.acceptWord("Under") {
			parent, err := p.name("parent coalition", "Description")
			if err != nil {
				return nil, err
			}
			c.Parent = parent
		}
		if p.acceptWord("Description") {
			if p.peek().kind != kString {
				return nil, fmt.Errorf("wtl: expected quoted description, got %q", p.peek().text)
			}
			c.Description = p.next().text
		}
		return c, nil
	case p.acceptWord("Service"):
		if err := p.expectWord("Link"); err != nil {
			return nil, err
		}
		name, err := p.name("link name", "From")
		if err != nil {
			return nil, err
		}
		l := &CreateLink{Name: name}
		if err := p.expectWord("From"); err != nil {
			return nil, err
		}
		l.FromKind, err = p.kindWord()
		if err != nil {
			return nil, err
		}
		l.From, err = p.name("link origin", "To")
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("To"); err != nil {
			return nil, err
		}
		l.ToKind, err = p.kindWord()
		if err != nil {
			return nil, err
		}
		l.To, err = p.name("link target", "Information")
		if err != nil {
			return nil, err
		}
		if p.acceptWord("Information") {
			if p.peek().kind == kString {
				l.InfoType = p.next().text
			} else {
				l.InfoType, err = p.name("information type")
				if err != nil {
					return nil, err
				}
			}
		}
		return l, nil
	}
	return nil, fmt.Errorf("wtl: expected Coalition or Service Link after Create, got %q", p.peek().text)
}

func (p *parser) kindWord() (string, error) {
	switch {
	case p.acceptWord("Coalition"):
		return "coalition", nil
	case p.acceptWord("Database"):
		return "database", nil
	}
	return "", fmt.Errorf("wtl: expected Coalition or Database, got %q", p.peek().text)
}

// parseFuncQuery parses
//
//	Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs")) [On <source>] [Limit <n>];
func (p *parser) parseFuncQuery() (Stmt, error) {
	fn := p.next().text
	if err := p.expect("("); err != nil {
		return nil, err
	}
	argCol, err := p.qualifiedColumn()
	if err != nil {
		return nil, err
	}
	q := &FuncQuery{Function: fn, ArgCol: argCol}
	if p.accept(",") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, cond)
			if !p.acceptWord("AND") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.acceptWord("On") {
		if p.acceptWord("Coalition") {
			q.OnCoalition = true
		}
		src, err := p.sourceName()
		if err != nil {
			return nil, err
		}
		q.Source = src
	}
	if p.semiJoinAhead() {
		if !q.OnCoalition {
			return nil, fmt.Errorf("wtl: SemiJoin requires the outer query to target a coalition (On Coalition <name>)")
		}
		p.next() // SemiJoin
		join, err := p.parseSemiJoin()
		if err != nil {
			return nil, err
		}
		q.Join = join
	}
	if p.limitAhead() {
		p.next() // Limit
		n, err := strconv.Atoi(p.next().text)
		if err != nil {
			return nil, fmt.Errorf("wtl: invalid Limit count: %v", err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("wtl: Limit must be positive, got %d", n)
		}
		q.Limit = n
	}
	return q, nil
}

// parseSemiJoin parses the join clause body after the SemiJoin keyword:
//
//	Fn(Col[, (preds)]) On Coalition <name>
//
// Both join sides must be coalition queries — the operator exists to
// correlate across members, so a single-source side has nothing to prune.
// Nesting is rejected by the top-level parser: a second SemiJoin keyword
// after the inner source is a trailing token.
func (p *parser) parseSemiJoin() (*SemiJoin, error) {
	fn := p.next()
	if fn.kind != kWord || p.peek().text != "(" {
		return nil, fmt.Errorf("wtl: expected function invocation after SemiJoin, got %q", fn.text)
	}
	p.next() // (
	argCol, err := p.qualifiedColumn()
	if err != nil {
		return nil, err
	}
	j := &SemiJoin{Function: fn.text, ArgCol: argCol}
	if p.accept(",") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			j.Preds = append(j.Preds, cond)
			if !p.acceptWord("AND") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expectWord("On"); err != nil {
		return nil, err
	}
	if err := p.expectWord("Coalition"); err != nil {
		return nil, fmt.Errorf("wtl: SemiJoin side must target a coalition: %v", err)
	}
	src, err := p.sourceName()
	if err != nil {
		return nil, err
	}
	j.Source = src
	return j, nil
}

// sourceName reads the multi-word On-clause target: a quoted string, or
// consecutive words up to the trailing Limit clause, a SemiJoin clause, ";"
// or EOF. Unlike the generic name() helper it uses lookahead shapes rather
// than bare stop words, so a source whose name merely contains the word
// "Limit" or "SemiJoin" keeps parsing as a name and the printed form stays
// a parse fixed point.
func (p *parser) sourceName() (string, error) {
	if p.peek().kind == kString {
		return p.next().text, nil
	}
	var words []string
	for {
		t := p.peek()
		if t.kind != kWord || p.limitAhead() || p.semiJoinAhead() {
			break
		}
		words = append(words, p.next().text)
	}
	if len(words) == 0 {
		return "", fmt.Errorf("wtl: expected source name, got %q", p.peek().text)
	}
	return strings.Join(words, " "), nil
}

// semiJoinAhead reports whether the tokens at the cursor spell a join
// clause: the word "SemiJoin", then a function invocation (word + "(").
// The three-token shape disambiguates a source named "SemiJoin Services"
// from the operator while scanning multi-word source names.
func (p *parser) semiJoinAhead() bool {
	t := p.peek()
	if t.kind != kWord || !strings.EqualFold(t.text, "SemiJoin") {
		return false
	}
	fn := p.toks[p.pos+1]
	if fn.kind != kWord {
		return false
	}
	open := p.toks[p.pos+2]
	return open.kind == kPunct && open.text == "("
}

// limitAhead reports whether the tokens at the cursor spell a Limit clause:
// the word "Limit", a digits-only count, then end of statement. The
// three-token shape is required so the clause can be recognised without
// ambiguity while scanning multi-word source names.
func (p *parser) limitAhead() bool {
	t := p.peek()
	if t.kind != kWord || !strings.EqualFold(t.text, "Limit") {
		return false
	}
	n := p.toks[p.pos+1]
	if n.kind != kWord || !allDigits(n.text) {
		return false
	}
	end := p.toks[p.pos+2]
	return end.kind == kEOF || end.kind == kPunct && end.text == ";"
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

func (p *parser) qualifiedColumn() (string, error) {
	t := p.next()
	if t.kind != kWord {
		return "", fmt.Errorf("wtl: expected column, got %q", t.text)
	}
	col := t.text
	for p.accept(".") {
		part := p.next()
		if part.kind != kWord {
			return "", fmt.Errorf("wtl: expected identifier after '.', got %q", part.text)
		}
		col += "." + part.text
	}
	return col, nil
}

func (p *parser) condition() (Condition, error) {
	col, err := p.qualifiedColumn()
	if err != nil {
		return Condition{}, err
	}
	var op string
	t := p.next()
	switch {
	case t.kind == kPunct && (t.text == "=" || t.text == "<" || t.text == "<=" ||
		t.text == ">" || t.text == ">=" || t.text == "<>"):
		op = t.text
	case t.kind == kPunct && t.text == "!=":
		op = "<>"
	case t.kind == kWord && strings.EqualFold(t.text, "LIKE"):
		op = "LIKE"
	default:
		return Condition{}, fmt.Errorf("wtl: expected comparison operator, got %q", t.text)
	}
	lit := p.next()
	switch lit.kind {
	case kString:
		return Condition{Column: col, Op: op, Value: lit.text, IsStr: true}, nil
	case kWord:
		return Condition{Column: col, Op: op, Value: lit.text}, nil
	}
	return Condition{}, fmt.Errorf("wtl: expected literal, got %q", lit.text)
}
