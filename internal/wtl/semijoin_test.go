package wtl

import (
	"strings"
	"testing"
)

func TestFuncQuerySemiJoin(t *testing.T) {
	s := parseOK(t, `V(R.K) On Coalition A SemiJoin W(R.V, (R.V >= 2)) On Coalition B;`)
	q := s.(*FuncQuery)
	if q.Join == nil {
		t.Fatalf("join missing: %#v", q)
	}
	if q.Join.Function != "W" || q.Join.ArgCol != "R.V" || q.Join.Source != "B" {
		t.Fatalf("join side: %#v", q.Join)
	}
	if len(q.Join.Preds) != 1 || q.Join.Preds[0].Op != ">=" || q.Join.Preds[0].Value != "2" {
		t.Fatalf("join preds: %#v", q.Join.Preds)
	}

	// Join followed by Limit: the limit belongs to the outer statement.
	s = parseOK(t, `V(R.K) On Coalition A SemiJoin W(R.V) On Coalition B Limit 3;`)
	q = s.(*FuncQuery)
	if q.Limit != 3 || q.Join == nil || q.Join.Source != "B" {
		t.Fatalf("join+limit: %#v join=%#v", q, q.Join)
	}

	// A source whose name contains the word SemiJoin keeps parsing as a
	// name: only the operator's three-token shape (SemiJoin, word, "(")
	// starts the clause.
	s = parseOK(t, `V(R.K) On SemiJoin Services;`)
	if q := s.(*FuncQuery); q.Join != nil || q.Source != "SemiJoin Services" {
		t.Fatalf("semijoin-in-name: %#v", q)
	}
}

func TestFuncQuerySemiJoinRoundTrip(t *testing.T) {
	for _, src := range []string{
		`V(R.K) On Coalition A SemiJoin W(R.V) On Coalition B;`,
		`V(R.K) On Coalition A SemiJoin W(R.V, (R.V >= 2)) On Coalition B Limit 3;`,
		`V(R.K, (R.K LIKE "k%")) On Coalition c0 SemiJoin K(R.V, (R.V = 7 AND R.K <> "a")) On Coalition c1;`,
	} {
		s1 := parseOK(t, src)
		s2 := parseOK(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round trip unstable:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestFuncQuerySemiJoinErrors(t *testing.T) {
	for _, src := range []string{
		// Outer side must be a coalition query.
		`V(R.K) SemiJoin W(R.V) On Coalition B;`,
		`V(R.K) On RBH SemiJoin W(R.V) On Coalition B;`,
		// Inner side must be a coalition query.
		`V(R.K) On Coalition A SemiJoin W(R.V) On B;`,
		`V(R.K) On Coalition A SemiJoin W(R.V);`,
		// No nesting.
		`V(R.K) On Coalition A SemiJoin W(R.V) On Coalition B SemiJoin X(R.K) On Coalition C;`,
		// Truncated clause bodies.
		`V(R.K) On Coalition A SemiJoin W(;`,
		`V(R.K) On Coalition A SemiJoin W(R.V, (R.V;`,
	} {
		if s, err := Parse(src); err == nil {
			t.Errorf("no error for %q (got %#v)", src, s)
		}
	}
}

func TestFragmentInClause(t *testing.T) {
	f := &Fragment{
		Table:   "r",
		Columns: []string{"v", "k"},
		Conds:   []Condition{{Column: "k", Op: "LIKE", Value: "k%", IsStr: true}},
		In:      &InClause{Column: "v", Keys: []KeyLiteral{{Text: "1"}, {Text: "o'k", IsStr: true}}},
		Limit:   5,
	}
	wantSQL := `SELECT a.v, a.k FROM r a WHERE a.k LIKE 'k%' AND a.v IN (1, 'o''k') LIMIT 5`
	if got := f.SQL(); got != wantSQL {
		t.Errorf("SQL:\n got %s\nwant %s", got, wantSQL)
	}
	wantOQL := `SELECT v, k FROM r WHERE k LIKE 'k%' AND v IN (1, 'o''k') LIMIT 5`
	if got := f.OQL(); got != wantOQL {
		t.Errorf("OQL:\n got %s\nwant %s", got, wantOQL)
	}

	// With no ordinary conjuncts the IN clause opens the WHERE itself.
	bare := &Fragment{Table: "r", Columns: []string{"v"},
		In: &InClause{Column: "v", Keys: []KeyLiteral{{Text: "7"}}}}
	if got := bare.SQL(); !strings.Contains(got, " WHERE a.v IN (7)") {
		t.Errorf("bare IN: %s", got)
	}
}
