package wtl

import (
	"fmt"
	"strings"
)

// TypeDecl is a parsed WebTassili exported-type declaration, the syntax the
// paper uses to advertise database interfaces (§2.2):
//
//	Type PatientHistory {
//	    attribute string Patient.Name;
//	    attribute date History.DateRecorded;
//	    function string Description(string Patient.Name, date History.DateRecorded);
//	}
type TypeDecl struct {
	Name       string
	Attributes []Member
	Functions  []FuncDecl
}

// FuncDecl is one access-routine declaration within a type.
type FuncDecl struct {
	Name    string
	Returns string
	Args    []Member
}

// ParseTypeDecls parses one or more Type declarations from a source text.
// A trailing "Predicate(x)" pseudo-argument (the paper writes it to show
// where the selection predicate goes) is accepted and dropped.
func ParseTypeDecls(src string) ([]TypeDecl, error) {
	toks, err := lexTypeDecl(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []TypeDecl
	for p.peek().kind != kEOF {
		td, err := p.parseTypeDecl()
		if err != nil {
			return nil, err
		}
		out = append(out, td)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wtl: no Type declarations found")
	}
	return out, nil
}

// lexTypeDecl reuses the statement lexer but also accepts braces.
func lexTypeDecl(src string) ([]tok, error) {
	// The statement lexer rejects '{'/'}'; translate them to sentinels the
	// declaration parser understands by tokenising around them.
	var toks []tok
	rest := src
	for {
		i := strings.IndexAny(rest, "{}")
		if i < 0 {
			part, err := lex(rest)
			if err != nil {
				return nil, err
			}
			toks = append(toks, part[:len(part)-1]...) // drop EOF
			break
		}
		part, err := lex(rest[:i])
		if err != nil {
			return nil, err
		}
		toks = append(toks, part[:len(part)-1]...)
		toks = append(toks, tok{kPunct, string(rest[i])})
		rest = rest[i+1:]
	}
	return append(toks, tok{kind: kEOF}), nil
}

func (p *parser) parseTypeDecl() (TypeDecl, error) {
	var td TypeDecl
	if err := p.expectWord("Type"); err != nil {
		return td, err
	}
	name := p.next()
	if name.kind != kWord {
		return td, fmt.Errorf("wtl: expected type name, got %q", name.text)
	}
	td.Name = name.text
	if err := p.expect("{"); err != nil {
		return td, err
	}
	for p.peek().text != "}" {
		switch {
		case p.acceptWord("attribute"):
			m, err := p.parseMember()
			if err != nil {
				return td, err
			}
			td.Attributes = append(td.Attributes, m)
			p.accept(";")
		case p.acceptWord("function"):
			fd, err := p.parseFuncDecl()
			if err != nil {
				return td, err
			}
			td.Functions = append(td.Functions, fd)
			p.accept(";")
		default:
			return td, fmt.Errorf("wtl: expected attribute or function in type %s, got %q",
				td.Name, p.peek().text)
		}
		if p.peek().kind == kEOF {
			return td, fmt.Errorf("wtl: unterminated type %s", td.Name)
		}
	}
	p.next() // }
	p.accept(";")
	return td, nil
}

func (p *parser) parseMember() (Member, error) {
	typ := p.next()
	if typ.kind != kWord {
		return Member{}, fmt.Errorf("wtl: expected member type, got %q", typ.text)
	}
	name, err := p.qualifiedColumn()
	if err != nil {
		return Member{}, err
	}
	return Member{Type: typ.text, Name: name}, nil
}

func (p *parser) parseFuncDecl() (FuncDecl, error) {
	var fd FuncDecl
	ret := p.next()
	if ret.kind != kWord {
		return fd, fmt.Errorf("wtl: expected function return type, got %q", ret.text)
	}
	fd.Returns = ret.text
	name := p.next()
	if name.kind != kWord {
		return fd, fmt.Errorf("wtl: expected function name, got %q", name.text)
	}
	fd.Name = name.text
	if err := p.expect("("); err != nil {
		return fd, err
	}
	for p.peek().text != ")" {
		// The paper writes a final "Predicate(x)" pseudo-argument.
		if strings.EqualFold(p.peek().text, "Predicate") {
			p.next()
			if err := p.expect("("); err != nil {
				return fd, err
			}
			p.next() // the predicate variable
			if err := p.expect(")"); err != nil {
				return fd, err
			}
		} else {
			m, err := p.parseMember()
			if err != nil {
				return fd, err
			}
			// The paper sometimes names the formal ("... Title x"); accept
			// and drop a trailing bare word.
			if p.peek().kind == kWord && p.toks[p.pos+1].text == "," ||
				p.peek().kind == kWord && p.toks[p.pos+1].text == ")" {
				p.next()
			}
			fd.Args = append(fd.Args, m)
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return fd, err
	}
	return fd, nil
}
