package wtl

import "testing"

func TestParseTypeDeclPaperExamples(t *testing.T) {
	// The paper's PatientHistory declaration, verbatim shape (§2.2).
	src := `
Type PatientHistory {
    attribute string Patient.Name;
    attribute int History.DateRecorded;
    function string Description(string Patient.Name, int History.DateRecorded);
}`
	decls, err := ParseTypeDecls(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 1 {
		t.Fatalf("decls = %d", len(decls))
	}
	td := decls[0]
	if td.Name != "PatientHistory" {
		t.Errorf("name = %s", td.Name)
	}
	if len(td.Attributes) != 2 || td.Attributes[0].Name != "Patient.Name" ||
		td.Attributes[0].Type != "string" {
		t.Errorf("attributes = %+v", td.Attributes)
	}
	if len(td.Functions) != 1 {
		t.Fatalf("functions = %+v", td.Functions)
	}
	fn := td.Functions[0]
	if fn.Name != "Description" || fn.Returns != "string" || len(fn.Args) != 2 {
		t.Errorf("function = %+v", fn)
	}
}

func TestParseTypeDeclWithPredicateAndFormals(t *testing.T) {
	// The paper's ResearchProjects declaration writes a named formal and
	// the Predicate(x) pseudo-argument.
	src := `Type ResearchProjects {
    attribute string ResearchProjects.Title;
    function real Funding(string ResearchProjects.Title x, Predicate(x));
};`
	decls, err := ParseTypeDecls(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := decls[0].Functions[0]
	if fn.Name != "Funding" || fn.Returns != "real" {
		t.Errorf("function = %+v", fn)
	}
	if len(fn.Args) != 1 || fn.Args[0].Name != "ResearchProjects.Title" {
		t.Errorf("args = %+v", fn.Args)
	}
}

func TestParseMultipleTypeDecls(t *testing.T) {
	src := `
Type A { attribute string X.Y; }
Type B { function int F(string X.Y); }
`
	decls, err := ParseTypeDecls(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 2 || decls[0].Name != "A" || decls[1].Name != "B" {
		t.Errorf("decls = %+v", decls)
	}
}

func TestParseTypeDeclErrors(t *testing.T) {
	bad := []string{
		"",
		"Type {}",
		"Type X {",
		"Type X { wombat string a; }",
		"Type X { attribute ; }",
		"Type X { function F(; }",
		"NotAType X {}",
	}
	for _, src := range bad {
		if _, err := ParseTypeDecls(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
