package wtl

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) Stmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestFindCoalitions(t *testing.T) {
	s := parseOK(t, "Find Coalitions With Information Medical Research;")
	fc, ok := s.(*FindCoalitions)
	if !ok || fc.Topic != "Medical Research" {
		t.Fatalf("got %#v", s)
	}
	// Quoted topic and keyword case-insensitivity.
	s = parseOK(t, `find coalitions with information "Medical Insurance"`)
	if s.(*FindCoalitions).Topic != "Medical Insurance" {
		t.Errorf("quoted topic: %#v", s)
	}
}

func TestConnect(t *testing.T) {
	s := parseOK(t, "Connect To Coalition Research;")
	if s.(*Connect).Coalition != "Research" {
		t.Fatalf("got %#v", s)
	}
	s = parseOK(t, "Connect To Coalition Medical Insurance;")
	if s.(*Connect).Coalition != "Medical Insurance" {
		t.Fatalf("multi-word coalition: %#v", s)
	}
}

func TestDisplayForms(t *testing.T) {
	s := parseOK(t, "Display SubClasses of Class Research;")
	if s.(*DisplaySubClasses).Class != "Research" {
		t.Errorf("subclasses: %#v", s)
	}
	s = parseOK(t, "Display Instances of Class Research;")
	if s.(*DisplayInstances).Class != "Research" {
		t.Errorf("instances: %#v", s)
	}
	// The paper's exact §2.3 query, with trailing class qualifier.
	s = parseOK(t, "Display Document of Instance Royal Brisbane Hospital Of Class Research;")
	d := s.(*DisplayDocument)
	if d.Instance != "Royal Brisbane Hospital" || d.Class != "Research" {
		t.Errorf("document: %#v", d)
	}
	// "Documentation" variant, no class.
	s = parseOK(t, "Display Documentation of Instance Royal Brisbane Hospital;")
	d = s.(*DisplayDocument)
	if d.Instance != "Royal Brisbane Hospital" || d.Class != "" {
		t.Errorf("documentation: %#v", d)
	}
	s = parseOK(t, "Display Access Information of Instance Royal Brisbane Hospital;")
	if s.(*DisplayAccessInfo).Instance != "Royal Brisbane Hospital" {
		t.Errorf("access info: %#v", s)
	}
	s = parseOK(t, "Display Interface of Instance Royal Brisbane Hospital;")
	if s.(*DisplayInterface).Instance != "Royal Brisbane Hospital" {
		t.Errorf("interface: %#v", s)
	}
}

func TestFuncQuery(t *testing.T) {
	// The paper's Funding example, using doubled-quote escapes.
	s := parseOK(t, `Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs")) On Royal Brisbane Hospital;`)
	q := s.(*FuncQuery)
	if q.Function != "Funding" || q.ArgCol != "ResearchProjects.Title" {
		t.Fatalf("func query: %#v", q)
	}
	if len(q.Preds) != 1 || q.Preds[0].Column != "ResearchProjects.Title" ||
		q.Preds[0].Op != "=" || q.Preds[0].Value != "AIDS and drugs" || !q.Preds[0].IsStr {
		t.Errorf("predicate: %#v", q.Preds)
	}
	if q.Source != "Royal Brisbane Hospital" {
		t.Errorf("source: %q", q.Source)
	}
	// Single-quoted with '' escape (the paper's typography).
	s = parseOK(t, `Funding(ResearchProjects.Title, (ResearchProjects.Title = 'AIDS ''and'' drugs'))`)
	if v := s.(*FuncQuery).Preds[0].Value; v != "AIDS 'and' drugs" {
		t.Errorf("escaped literal: %q", v)
	}
	// Multiple conjuncts, numeric literal, no source.
	s = parseOK(t, `Description(Patient.Name, (Patient.Name = "Smith" AND History.DateRecorded >= 19980101));`)
	q = s.(*FuncQuery)
	if len(q.Preds) != 2 || q.Preds[1].Op != ">=" || q.Preds[1].Value != "19980101" || q.Preds[1].IsStr {
		t.Errorf("conjuncts: %#v", q.Preds)
	}
	// No predicate at all.
	s = parseOK(t, `Funding(ResearchProjects.Title)`)
	if len(s.(*FuncQuery).Preds) != 0 {
		t.Errorf("no-predicate form: %#v", s)
	}
}

func TestNativeQuery(t *testing.T) {
	s := parseOK(t, `Query Royal Brisbane Hospital Using Native "select * from medical_students";`)
	nq := s.(*NativeQuery)
	if nq.Source != "Royal Brisbane Hospital" || !strings.HasPrefix(nq.Text, "select *") {
		t.Fatalf("native query: %#v", nq)
	}
}

func TestSearchType(t *testing.T) {
	s := parseOK(t, "Search Type PatientHistory;")
	if s.(*SearchType).TypeName != "PatientHistory" {
		t.Fatalf("got %#v", s)
	}
}

func TestMaintenanceStatements(t *testing.T) {
	s := parseOK(t, `Create Coalition Cancer Research Under Research Description "cancer studies";`)
	cc := s.(*CreateCoalition)
	if cc.Name != "Cancer Research" || cc.Parent != "Research" || cc.Description != "cancer studies" {
		t.Fatalf("create coalition: %#v", cc)
	}
	s = parseOK(t, "Create Coalition Superannuation;")
	if cc := s.(*CreateCoalition); cc.Name != "Superannuation" || cc.Parent != "" {
		t.Errorf("minimal create: %#v", cc)
	}
	s = parseOK(t, `Create Service Link ATO_to_Medical From Database Australian Taxation Office To Coalition Medical Information "tax records";`)
	cl := s.(*CreateLink)
	if cl.Name != "ATO_to_Medical" || cl.FromKind != "database" ||
		cl.From != "Australian Taxation Office" || cl.ToKind != "coalition" ||
		cl.To != "Medical" || cl.InfoType != "tax records" {
		t.Fatalf("create link: %#v", cl)
	}
	s = parseOK(t, "Join Coalition Medical;")
	if s.(*JoinCoalition).Coalition != "Medical" {
		t.Errorf("join: %#v", s)
	}
	s = parseOK(t, "Leave Coalition Medical;")
	if s.(*LeaveCoalition).Coalition != "Medical" {
		t.Errorf("leave: %#v", s)
	}
}

func TestRoundTripStrings(t *testing.T) {
	// String() output must reparse to an equivalent statement.
	sources := []string{
		"Find Coalitions With Information Medical Research;",
		"Connect To Coalition Research;",
		"Display SubClasses Of Class Research;",
		"Display Instances Of Class Research;",
		"Display Document Of Instance Royal Brisbane Hospital Of Class Research;",
		"Display Access Information Of Instance Royal Brisbane Hospital;",
		"Display Interface Of Instance Royal Brisbane Hospital;",
		"Search Type PatientHistory;",
		`Query RBH Using Native "select 1";`,
		`Create Coalition X Under Y Description "d";`,
		`Create Service Link L From Coalition A To Database B Information "t";`,
		"Join Coalition Medical;",
		"Leave Coalition Medical;",
		`Funding(ResearchProjects.Title, (ResearchProjects.Title = "AIDS and drugs")) On RBH;`,
	}
	for _, src := range sources {
		s1 := parseOK(t, src)
		s2 := parseOK(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round trip unstable:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		";",
		"Find Coalitions Information x;",
		"Find Coalitions With Information ;",
		"Connect Coalition X;",
		"Display Wombats of Class X;",
		"Display Document of Instance;",
		"Display Document of Instance X of Wombat Y;",
		"Query X Using Native unquoted;",
		"Create Wombat X;",
		"Create Service Link L From Wombat A To Coalition B;",
		`Funding(ResearchProjects.Title, (Title ~ "x"))`,
		"Funding(ResearchProjects.Title, (Title = ))",
		"Funding(",
		`'unterminated`,
		"Find Coalitions With Information X; trailing",
	}
	for _, src := range bad {
		if s, err := Parse(src); err == nil {
			t.Errorf("no error for %q (got %#v)", src, s)
		}
	}
}

func TestSearchTypeWithStructure(t *testing.T) {
	s := parseOK(t, `Search Type ResearchProjects With Structure (attribute string ResearchProjects.Title; attribute date BeginDate;);`)
	st := s.(*SearchType)
	if st.TypeName != "ResearchProjects" || len(st.Structure) != 2 {
		t.Fatalf("got %#v", st)
	}
	if st.Structure[0].Type != "string" || st.Structure[0].Name != "ResearchProjects.Title" {
		t.Errorf("member 0: %#v", st.Structure[0])
	}
	if st.Structure[1].Name != "BeginDate" {
		t.Errorf("member 1: %#v", st.Structure[1])
	}
	// Round trip.
	s2 := parseOK(t, st.String())
	if s2.String() != st.String() {
		t.Errorf("round trip: %s vs %s", s2, st)
	}
	// Empty structure is an error.
	if _, err := Parse("Search Type X With Structure ();"); err == nil {
		t.Error("empty structure accepted")
	}
}

func TestFuncQueryOnCoalition(t *testing.T) {
	s := parseOK(t, `Funding(ResearchProjects.Title, (ResearchProjects.Title LIKE "%cancer%")) On Coalition Research;`)
	q := s.(*FuncQuery)
	if !q.OnCoalition || q.Source != "Research" {
		t.Fatalf("got %#v", q)
	}
	s2 := parseOK(t, q.String())
	if q2 := s2.(*FuncQuery); !q2.OnCoalition || q2.Source != "Research" {
		t.Errorf("round trip: %#v", q2)
	}
}
